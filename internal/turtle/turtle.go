// Package turtle implements a reader for the Turtle serialisation of RDF
// (https://www.w3.org/TR/turtle/) — the format most real-world ontologies
// ship in, and the second input format of the reasoner's input manager
// next to N-Triples.
//
// Supported: @prefix/@base and SPARQL-style PREFIX/BASE directives,
// prefixed names, the `a` keyword, predicate lists (`;`), object lists
// (`,`), anonymous and labelled blank nodes (including nested `[ p o ]`
// property lists), string literals with language tags and datatypes
// (short and long forms), and numeric/boolean literal abbreviations.
//
// Not supported (rejected with a parse error): RDF collections `( … )`
// and RDF-star annotations. Relative IRI resolution is prefix-joining
// only (no RFC 3986 normalisation).
package turtle

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"repro/internal/rdf"
)

// ParseError reports a Turtle syntax error with its 1-based line number.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("turtle: line %d: %s", e.Line, e.Msg)
}

// Reader parses a Turtle document into rdf.Statement values. Statements
// are produced in document order; blank property lists emit their inner
// statements before the statement that references them.
type Reader struct {
	br       *bufio.Reader
	line     int
	prefixes map[string]string
	base     string
	queue    []rdf.Statement
	blankSeq int
	err      error
	eof      bool
}

// NewReader returns a Turtle reader over r.
func NewReader(r io.Reader) *Reader {
	return &Reader{
		br:       bufio.NewReaderSize(r, 64*1024),
		line:     1,
		prefixes: map[string]string{},
	}
}

// ParseString parses a complete Turtle document held in a string.
func ParseString(doc string) ([]rdf.Statement, error) {
	return NewReader(strings.NewReader(doc)).ReadAll()
}

// ReadAll consumes the whole document.
func (r *Reader) ReadAll() ([]rdf.Statement, error) {
	var out []rdf.Statement
	for {
		st, err := r.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, st)
	}
}

// Read returns the next statement, io.EOF at the end of the document, or
// a *ParseError.
func (r *Reader) Read() (rdf.Statement, error) {
	for len(r.queue) == 0 {
		if r.err != nil {
			return rdf.Statement{}, r.err
		}
		if r.eof {
			return rdf.Statement{}, io.EOF
		}
		r.parseStatement()
	}
	st := r.queue[0]
	r.queue = r.queue[1:]
	return st, nil
}

func (r *Reader) emit(s, p, o rdf.Term) {
	r.queue = append(r.queue, rdf.Statement{S: s, P: p, O: o})
}

func (r *Reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = &ParseError{Line: r.line, Msg: fmt.Sprintf(format, args...)}
	}
}

// --- low-level character handling -----------------------------------

func (r *Reader) readByte() (byte, bool) {
	c, err := r.br.ReadByte()
	if err != nil {
		r.eof = true
		return 0, false
	}
	if c == '\n' {
		r.line++
	}
	return c, true
}

func (r *Reader) unread(c byte) {
	if c == '\n' {
		r.line--
	}
	_ = r.br.UnreadByte()
}

// skipWS consumes whitespace and comments; returns false at EOF.
func (r *Reader) skipWS() bool {
	for {
		c, ok := r.readByte()
		if !ok {
			return false
		}
		switch c {
		case ' ', '\t', '\r', '\n':
			continue
		case '#':
			for {
				c2, ok2 := r.readByte()
				if !ok2 {
					return false
				}
				if c2 == '\n' {
					break
				}
			}
		default:
			r.unread(c)
			return true
		}
	}
}

func (r *Reader) peekByte() (byte, bool) {
	c, ok := r.readByte()
	if ok {
		r.unread(c)
	}
	return c, ok
}

// --- grammar ---------------------------------------------------------

// parseStatement handles one directive or triples block.
func (r *Reader) parseStatement() {
	if !r.skipWS() {
		return
	}
	c, _ := r.peekByte()
	if c == '@' {
		r.directive()
		return
	}
	// SPARQL-style PREFIX / BASE (case-insensitive, no trailing dot).
	if c == 'P' || c == 'p' || c == 'B' || c == 'b' {
		if r.trySPARQLDirective() {
			return
		}
	}
	subject := r.subject()
	if r.err != nil || r.eof && subject.IsZero() {
		return
	}
	r.predicateObjectList(subject)
	if r.err != nil {
		return
	}
	if !r.expect('.') {
		return
	}
}

func (r *Reader) directive() {
	r.readByte() // '@'
	word := r.bareWord()
	switch word {
	case "prefix":
		r.prefixDirective(true)
	case "base":
		r.baseDirective(true)
	default:
		r.fail("unknown directive @%s", word)
	}
}

// trySPARQLDirective handles PREFIX/BASE; returns false if the upcoming
// token is not a directive (it is a prefixed-name subject instead).
func (r *Reader) trySPARQLDirective() bool {
	peek, err := r.br.Peek(7)
	if err != nil && len(peek) < 5 {
		return false
	}
	up := strings.ToUpper(string(peek))
	if strings.HasPrefix(up, "PREFIX") && (len(up) < 7 || up[6] == ' ' || up[6] == '\t') {
		r.br.Discard(6)
		r.prefixDirective(false)
		return true
	}
	if strings.HasPrefix(up, "BASE") && (len(up) >= 5 && (up[4] == ' ' || up[4] == '\t' || up[4] == '<')) {
		r.br.Discard(4)
		r.baseDirective(false)
		return true
	}
	return false
}

func (r *Reader) prefixDirective(dotted bool) {
	if !r.skipWS() {
		r.fail("unexpected EOF in prefix directive")
		return
	}
	name := r.bareWord() // may be empty for the default prefix
	if !r.expect(':') {
		return
	}
	if !r.skipWS() {
		r.fail("unexpected EOF in prefix directive")
		return
	}
	iri := r.iriRef()
	if r.err != nil {
		return
	}
	r.prefixes[name] = iri
	if dotted && !r.expect('.') {
		return
	}
}

func (r *Reader) baseDirective(dotted bool) {
	if !r.skipWS() {
		r.fail("unexpected EOF in base directive")
		return
	}
	r.base = r.iriRef()
	if dotted && r.err == nil {
		r.expect('.')
	}
}

// predicateObjectList parses `p1 o1, o2 ; p2 o3 ; …` for the subject.
func (r *Reader) predicateObjectList(subject rdf.Term) {
	for {
		if !r.skipWS() {
			r.fail("unexpected EOF, expected predicate")
			return
		}
		pred := r.predicate()
		if r.err != nil {
			return
		}
		for {
			obj := r.object()
			if r.err != nil {
				return
			}
			r.emit(subject, pred, obj)
			if !r.skipWS() {
				r.fail("unexpected EOF, expected ',' ';' or '.'")
				return
			}
			c, _ := r.peekByte()
			if c != ',' {
				break
			}
			r.readByte()
		}
		c, _ := r.peekByte()
		if c != ';' {
			return
		}
		r.readByte()
		// A ';' may be followed by '.' or ']' (trailing semicolon).
		if !r.skipWS() {
			r.fail("unexpected EOF after ';'")
			return
		}
		if c2, _ := r.peekByte(); c2 == '.' || c2 == ']' || c2 == ';' {
			return
		}
	}
}

func (r *Reader) subject() rdf.Term {
	if !r.skipWS() {
		return rdf.Term{}
	}
	c, _ := r.peekByte()
	switch c {
	case '<':
		return rdf.NewIRI(r.iriRef())
	case '_':
		return r.blankLabel()
	case '[':
		return r.blankPropertyList()
	case '(':
		r.fail("RDF collections are not supported")
		return rdf.Term{}
	default:
		t := r.prefixedNameOrKeyword(false)
		if r.err != nil {
			return rdf.Term{}
		}
		return t
	}
}

func (r *Reader) predicate() rdf.Term {
	c, _ := r.peekByte()
	switch c {
	case '<':
		return rdf.NewIRI(r.iriRef())
	default:
		return r.prefixedNameOrKeyword(true)
	}
}

func (r *Reader) object() rdf.Term {
	if !r.skipWS() {
		r.fail("unexpected EOF, expected object")
		return rdf.Term{}
	}
	c, _ := r.peekByte()
	switch {
	case c == '<':
		return rdf.NewIRI(r.iriRef())
	case c == '_':
		return r.blankLabel()
	case c == '[':
		return r.blankPropertyList()
	case c == '(':
		r.fail("RDF collections are not supported")
		return rdf.Term{}
	case c == '"' || c == '\'':
		return r.literal()
	case c >= '0' && c <= '9' || c == '-' || c == '+':
		return r.numericLiteral()
	default:
		return r.prefixedNameOrKeywordObject()
	}
}

// prefixedNameOrKeyword parses a prefixed name; in predicate position the
// bare keyword `a` expands to rdf:type.
func (r *Reader) prefixedNameOrKeyword(predicatePos bool) rdf.Term {
	word := r.bareWord()
	c, _ := r.peekByte()
	if c == ':' {
		r.readByte()
		local := r.localName()
		ns, ok := r.prefixes[word]
		if !ok {
			r.fail("unknown prefix %q", word)
			return rdf.Term{}
		}
		return rdf.NewIRI(ns + local)
	}
	if predicatePos && word == "a" {
		return rdf.NewIRI(rdf.IRIType)
	}
	r.fail("unexpected token %q", word)
	return rdf.Term{}
}

// prefixedNameOrKeywordObject additionally recognises boolean literals.
func (r *Reader) prefixedNameOrKeywordObject() rdf.Term {
	word := r.bareWord()
	c, _ := r.peekByte()
	if c == ':' {
		r.readByte()
		local := r.localName()
		ns, ok := r.prefixes[word]
		if !ok {
			r.fail("unknown prefix %q", word)
			return rdf.Term{}
		}
		return rdf.NewIRI(ns + local)
	}
	switch word {
	case "true", "false":
		return rdf.NewTypedLiteral(word, rdf.XSDNS+"boolean")
	}
	r.fail("unexpected token %q", word)
	return rdf.Term{}
}

// blankPropertyList parses `[ p o ; … ]`, emitting the inner statements
// and returning the fresh blank node.
func (r *Reader) blankPropertyList() rdf.Term {
	r.readByte() // '['
	r.blankSeq++
	node := rdf.NewBlank(fmt.Sprintf("gen%d", r.blankSeq))
	if !r.skipWS() {
		r.fail("unterminated [")
		return rdf.Term{}
	}
	if c, _ := r.peekByte(); c == ']' { // anonymous node []
		r.readByte()
		return node
	}
	r.predicateObjectList(node)
	if r.err != nil {
		return rdf.Term{}
	}
	if !r.expect(']') {
		return rdf.Term{}
	}
	return node
}

func (r *Reader) blankLabel() rdf.Term {
	r.readByte() // '_'
	if c, ok := r.readByte(); !ok || c != ':' {
		r.fail("expected ':' after '_'")
		return rdf.Term{}
	}
	label := r.localName()
	if label == "" {
		r.fail("empty blank node label")
		return rdf.Term{}
	}
	return rdf.NewBlank(label)
}

func (r *Reader) iriRef() string {
	r.readByte() // '<'
	var b strings.Builder
	for {
		c, ok := r.readByte()
		if !ok {
			r.fail("unterminated IRI")
			return ""
		}
		if c == '>' {
			break
		}
		if c == ' ' || c == '\n' {
			r.fail("whitespace in IRI")
			return ""
		}
		b.WriteByte(c)
	}
	iri := b.String()
	if r.base != "" && !strings.Contains(iri, "://") && !strings.HasPrefix(iri, "urn:") {
		iri = r.base + iri
	}
	if iri == "" {
		r.fail("empty IRI")
	}
	return iri
}

// literal parses short and long quoted strings with optional @lang/^^dt.
func (r *Reader) literal() rdf.Term {
	quote, _ := r.readByte()
	long := false
	if p, err := r.br.Peek(2); err == nil && len(p) == 2 && p[0] == quote && p[1] == quote {
		r.br.Discard(2)
		long = true
	} else if p, err := r.br.Peek(1); err == nil && p[0] == quote {
		// Empty short string "".
		r.br.Discard(1)
		return r.literalSuffix("")
	}
	var b strings.Builder
	for {
		c, ok := r.readByte()
		if !ok {
			r.fail("unterminated string literal")
			return rdf.Term{}
		}
		if c == '\\' {
			e, ok := r.readByte()
			if !ok {
				r.fail("dangling backslash")
				return rdf.Term{}
			}
			switch e {
			case 't':
				b.WriteByte('\t')
			case 'n':
				b.WriteByte('\n')
			case 'r':
				b.WriteByte('\r')
			case 'b':
				b.WriteByte('\b')
			case 'f':
				b.WriteByte('\f')
			case '"', '\'', '\\':
				b.WriteByte(e)
			case 'u', 'U':
				width := 4
				if e == 'U' {
					width = 8
				}
				hex := make([]byte, width)
				if _, err := io.ReadFull(r.br, hex); err != nil {
					r.fail("truncated unicode escape")
					return rdf.Term{}
				}
				var v uint32
				for _, h := range hex {
					var d uint32
					switch {
					case h >= '0' && h <= '9':
						d = uint32(h - '0')
					case h >= 'a' && h <= 'f':
						d = uint32(h-'a') + 10
					case h >= 'A' && h <= 'F':
						d = uint32(h-'A') + 10
					default:
						r.fail("bad unicode escape")
						return rdf.Term{}
					}
					v = v<<4 | d
				}
				b.WriteRune(rune(v))
			default:
				r.fail("invalid escape \\%c", e)
				return rdf.Term{}
			}
			continue
		}
		if c == quote {
			if !long {
				break
			}
			if p, err := r.br.Peek(2); err == nil && len(p) == 2 && p[0] == quote && p[1] == quote {
				r.br.Discard(2)
				break
			}
			b.WriteByte(c)
			continue
		}
		if c == '\n' && !long {
			r.fail("newline in short string literal")
			return rdf.Term{}
		}
		b.WriteByte(c)
	}
	return r.literalSuffix(b.String())
}

func (r *Reader) literalSuffix(lex string) rdf.Term {
	c, ok := r.peekByte()
	if !ok {
		return rdf.NewLiteral(lex)
	}
	if c == '@' {
		r.readByte()
		var b strings.Builder
		for {
			c2, ok2 := r.readByte()
			if !ok2 {
				break
			}
			if c2 >= 'a' && c2 <= 'z' || c2 >= 'A' && c2 <= 'Z' || c2 >= '0' && c2 <= '9' || c2 == '-' {
				b.WriteByte(c2)
				continue
			}
			r.unread(c2)
			break
		}
		if b.Len() == 0 {
			r.fail("empty language tag")
			return rdf.Term{}
		}
		return rdf.NewLangLiteral(lex, b.String())
	}
	if c == '^' {
		r.readByte()
		if c2, ok2 := r.readByte(); !ok2 || c2 != '^' {
			r.fail("expected ^^ before datatype")
			return rdf.Term{}
		}
		if !r.skipWS() {
			r.fail("missing datatype")
			return rdf.Term{}
		}
		dc, _ := r.peekByte()
		if dc == '<' {
			return rdf.NewTypedLiteral(lex, r.iriRef())
		}
		dt := r.prefixedNameOrKeyword(false)
		if r.err != nil {
			return rdf.Term{}
		}
		return rdf.NewTypedLiteral(lex, dt.Value)
	}
	return rdf.NewLiteral(lex)
}

// numericLiteral parses integer/decimal/double abbreviations into typed
// literals.
func (r *Reader) numericLiteral() rdf.Term {
	var b strings.Builder
	dots, exp := 0, false
	for {
		c, ok := r.readByte()
		if !ok {
			break
		}
		switch {
		case c >= '0' && c <= '9', c == '-' && b.Len() == 0, c == '+' && b.Len() == 0:
			b.WriteByte(c)
		case c == '.':
			// A dot followed by a non-digit terminates the statement.
			if p, err := r.br.Peek(1); err != nil || p[0] < '0' || p[0] > '9' {
				r.unread(c)
				goto done
			}
			dots++
			b.WriteByte(c)
		case c == 'e' || c == 'E':
			exp = true
			b.WriteByte(c)
			if p, err := r.br.Peek(1); err == nil && (p[0] == '-' || p[0] == '+') {
				c2, _ := r.readByte()
				b.WriteByte(c2)
			}
		default:
			r.unread(c)
			goto done
		}
	}
done:
	lex := b.String()
	if lex == "" || lex == "-" || lex == "+" {
		r.fail("malformed numeric literal")
		return rdf.Term{}
	}
	switch {
	case exp:
		return rdf.NewTypedLiteral(lex, rdf.XSDNS+"double")
	case dots > 0:
		return rdf.NewTypedLiteral(lex, rdf.XSDNS+"decimal")
	default:
		return rdf.NewTypedLiteral(lex, rdf.IRIXSDInteger)
	}
}

// bareWord reads [A-Za-z0-9_-]* without consuming the following rune.
func (r *Reader) bareWord() string {
	var b strings.Builder
	for {
		c, ok := r.readByte()
		if !ok {
			break
		}
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' || c == '-' {
			b.WriteByte(c)
			continue
		}
		r.unread(c)
		break
	}
	return b.String()
}

// localName reads the local part of a prefixed name; allows dots inside
// but not at the end (a trailing dot terminates the statement).
func (r *Reader) localName() string {
	var b strings.Builder
	for {
		c, ok := r.readByte()
		if !ok {
			break
		}
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' ||
			c == '_' || c == '-' || c == '%' {
			b.WriteByte(c)
			continue
		}
		if c == '.' {
			// Dot is part of the name only if followed by a name char.
			if p, err := r.br.Peek(1); err == nil && len(p) == 1 && isLocalChar(p[0]) {
				b.WriteByte(c)
				continue
			}
		}
		r.unread(c)
		break
	}
	return b.String()
}

func isLocalChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' ||
		c == '_' || c == '-' || c == '%'
}

// expect consumes the next non-whitespace byte and checks it.
func (r *Reader) expect(want byte) bool {
	if !r.skipWS() {
		r.fail("unexpected EOF, expected %q", want)
		return false
	}
	c, _ := r.readByte()
	if c != want {
		r.fail("expected %q, found %q", want, c)
		return false
	}
	return true
}
