package reasoner

import (
	"context"
	"testing"
	"time"

	"repro/internal/rdf"
	"repro/internal/rules"
	"repro/internal/store"
)

func TestAdaptiveClosureUnchanged(t *testing.T) {
	// Adaptive scheduling changes *when* rules run, never the result.
	input := chain(80)
	fixed, _ := runEngine(t, rules.RhoDF(), Config{BufferSize: 8}, input)
	adaptive, _ := runEngine(t, rules.RhoDF(), Config{BufferSize: 8, Adaptive: true}, input)
	if fixed.Len() != adaptive.Len() {
		t.Fatalf("closure differs: fixed %d, adaptive %d", fixed.Len(), adaptive.Len())
	}
	fixed.ForEach(func(tr rdf.Triple) bool {
		if !adaptive.Contains(tr) {
			t.Fatalf("adaptive closure missing %v", tr)
		}
		return true
	})
}

func TestAdaptiveGrowsUnproductiveModules(t *testing.T) {
	// Workload with only subClassOf triples: the universal-input modules
	// (prp-dom, prp-rng, prp-spo1) run constantly and infer nothing, so
	// under the adaptive policy their buffers must grow.
	st := store.New()
	e := New(st, rules.RhoDF(), Config{BufferSize: 4, Adaptive: true})
	for i := 0; i < 400; i++ {
		e.Add(rdf.T(rdf.FirstCustomID+rdf.ID(i), rdf.IDSubClassOf, rdf.FirstCustomID+rdf.ID(i+1)))
	}
	if err := e.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	stats := e.Stats()
	grew := false
	for _, name := range []string{"prp-dom", "prp-rng"} {
		m := stats.ModuleByName(name)
		if m.BufferCapacity > 4 {
			grew = true
		}
		if m.CapacityGrows == 0 {
			t.Errorf("%s never grew its buffer (stats %+v)", name, m)
		}
	}
	if !grew {
		t.Fatal("no unproductive module grew its buffer")
	}
}

func TestAdaptiveShrinksWhenProductiveAgain(t *testing.T) {
	st := store.New()
	e := New(st, rules.RhoDF(), Config{BufferSize: 2, Adaptive: true, Timeout: time.Millisecond})
	// Phase 1: plain assertions; prp-dom grows.
	p := rdf.FirstCustomID + 9999
	for i := 0; i < 200; i++ {
		e.Add(rdf.T(rdf.FirstCustomID+rdf.ID(i), p, rdf.FirstCustomID+rdf.ID(i+1)))
	}
	if err := e.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if e.Stats().ModuleByName("prp-dom").CapacityGrows == 0 {
		t.Fatal("precondition: prp-dom did not grow")
	}
	// Phase 2: a domain declaration makes prp-dom massively productive;
	// its buffer should shrink back toward the configured size.
	e.Add(rdf.T(p, rdf.IDDomain, rdf.FirstCustomID+50000))
	for i := 200; i < 400; i++ {
		e.Add(rdf.T(rdf.FirstCustomID+rdf.ID(i), p, rdf.FirstCustomID+rdf.ID(i+1)))
	}
	if err := e.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	m := e.Stats().ModuleByName("prp-dom")
	if m.CapacityShrinks == 0 {
		t.Fatalf("prp-dom never shrank after becoming productive: %+v", m)
	}
	// And the inference is complete despite all the capacity churn.
	if !st.Contains(rdf.T(rdf.FirstCustomID+250, rdf.IDType, rdf.FirstCustomID+50000)) {
		t.Fatal("domain typing incomplete under adaptive scheduling")
	}
}

func TestAdaptiveDisabledByDefault(t *testing.T) {
	st := store.New()
	e := New(st, rules.RhoDF(), Config{BufferSize: 4})
	for i := 0; i < 200; i++ {
		e.Add(rdf.T(rdf.FirstCustomID+rdf.ID(i), rdf.IDSubClassOf, rdf.FirstCustomID+rdf.ID(i+1)))
	}
	if err := e.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, m := range e.Stats().Modules {
		if m.CapacityGrows != 0 || m.CapacityShrinks != 0 || m.BufferCapacity != 4 {
			t.Fatalf("capacity changed without Adaptive: %+v", m)
		}
	}
}

func TestBufferSetCapacityOverflow(t *testing.T) {
	buf := newBuffer(10)
	for i := 0; i < 5; i++ {
		buf.add(sc(a, b))
	}
	// Shrinking below the current fill returns the overflow batch.
	batch := buf.setCapacity(3)
	if len(batch) != 5 {
		t.Fatalf("setCapacity returned %d triples, want 5", len(batch))
	}
	if buf.size() != 0 || buf.capacity() != 3 {
		t.Fatalf("buffer state after shrink: size=%d cap=%d", buf.size(), buf.capacity())
	}
	// Clamping.
	if buf.setCapacity(0); buf.capacity() != 1 {
		t.Fatalf("capacity not clamped to 1: %d", buf.capacity())
	}
}

func TestEngineOWLHorstMatchesOracle(t *testing.T) {
	input := []rdf.Triple{
		rdf.T(p1, rdf.IDType, rdf.IDTransitiveProperty),
		rdf.T(a, p1, b), rdf.T(b, p1, c), rdf.T(c, p1, d),
		rdf.T(a, rdf.IDEquivalentClass, b),
		rdf.T(x, rdf.IDType, a),
		rdf.T(p2, rdf.IDInverseOf, p1),
		rdf.T(x, rdf.IDSameAs, y),
	}
	st, _ := runEngine(t, rules.OWLHorst(), Config{BufferSize: 2}, input)
	assertSameClosure(t, rules.OWLHorst, st, input)
	for _, want := range []rdf.Triple{
		rdf.T(a, p1, d),         // prp-trp
		rdf.T(b, p2, a),         // prp-inv
		rdf.T(x, rdf.IDType, b), // cax-eqc
		rdf.T(y, rdf.IDType, a), // eq-rep over sameAs
	} {
		if !st.Contains(want) {
			t.Errorf("OWL-Horst engine closure missing %v", want)
		}
	}
}
