package reasoner

import "sync/atomic"

// moduleCounters holds one rule module's live counters. All fields are
// updated atomically.
type moduleCounters struct {
	routed            atomic.Int64
	executions        atomic.Int64
	bufferFullFlushes atomic.Int64
	timeoutFlushes    atomic.Int64
	explicitFlushes   atomic.Int64
	derived           atomic.Int64
	fresh             atomic.Int64
	capacityGrows     atomic.Int64
	capacityShrinks   atomic.Int64
}

// ModuleStats is a snapshot of one rule module's counters. These are the
// numbers the demo's Run panel shows per buffer: times the buffer filled,
// times it was forced to flush by timeout, and triples inferred.
type ModuleStats struct {
	// Rule is the rule name.
	Rule string
	// Routed counts triples placed into this module's buffer.
	Routed int64
	// Executions counts rule-module instances run.
	Executions int64
	// BufferFullFlushes counts flushes triggered by a full buffer.
	BufferFullFlushes int64
	// TimeoutFlushes counts flushes forced by the inactivity timeout.
	TimeoutFlushes int64
	// ExplicitFlushes counts flushes forced while draining (Wait/Close).
	ExplicitFlushes int64
	// Derived counts triples the rule emitted (including duplicates).
	Derived int64
	// Fresh counts emitted triples that were new to the store.
	Fresh int64
	// BufferCapacity is the buffer's current flush threshold (changes
	// only under adaptive scheduling).
	BufferCapacity int
	// CapacityGrows and CapacityShrinks count adaptive-policy actions.
	CapacityGrows   int64
	CapacityShrinks int64
}

// Stats is a snapshot of engine-level counters plus per-module detail.
type Stats struct {
	// Input counts explicit triples accepted (new to the store).
	Input int64
	// DuplicateInput counts explicit triples dropped as already known.
	DuplicateInput int64
	// Inferred counts distinct inferred triples added to the store.
	Inferred int64
	// Duplicates counts derivations dropped because the triple was
	// already present (the paper's "duplicates limitation" at work).
	Duplicates int64
	// Executions counts rule-module instances across all modules.
	Executions int64
	// Modules holds per-rule detail, in ruleset order.
	Modules []ModuleStats
}

// ModuleByName returns the stats for one rule, or a zero value.
func (s Stats) ModuleByName(rule string) ModuleStats {
	for _, m := range s.Modules {
		if m.Rule == rule {
			return m
		}
	}
	return ModuleStats{}
}
