package reasoner

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/baseline"
	"repro/internal/rdf"
	"repro/internal/rules"
	"repro/internal/store"
)

const (
	a rdf.ID = rdf.FirstCustomID + iota
	b
	c
	d
	p1
	p2
	x
	y
)

func sc(s, o rdf.ID) rdf.Triple { return rdf.T(s, rdf.IDSubClassOf, o) }
func ty(s, o rdf.ID) rdf.Triple { return rdf.T(s, rdf.IDType, o) }
func sp(s, o rdf.ID) rdf.Triple { return rdf.T(s, rdf.IDSubPropertyOf, o) }

func chain(n int) []rdf.Triple {
	out := []rdf.Triple{ty(rdf.FirstCustomID, rdf.IDClass)}
	for i := 1; i < n; i++ {
		id := rdf.FirstCustomID + rdf.ID(i)
		out = append(out, ty(id, rdf.IDClass), sc(id, id-1))
	}
	return out
}

// runEngine streams input through a fresh engine and returns its store.
func runEngine(t *testing.T, ruleset []rules.Rule, cfg Config, input []rdf.Triple) (*store.Store, Stats) {
	t.Helper()
	st := store.New()
	e := New(st, ruleset, cfg)
	e.AddAll(input)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := e.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := e.Err(); err != nil {
		t.Fatalf("engine error: %v", err)
	}
	return st, e.Stats()
}

// assertSameClosure verifies the engine's store equals the baseline
// (semi-naive batch) closure of the same input — the baseline is the
// independently-implemented oracle.
func assertSameClosure(t *testing.T, ruleset func() []rules.Rule, got *store.Store, input []rdf.Triple) {
	t.Helper()
	oracle, _, err := baseline.Closure(context.Background(), ruleset(), input)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != oracle.Len() {
		t.Fatalf("engine closure has %d triples, oracle %d", got.Len(), oracle.Len())
	}
	var missing []rdf.Triple
	oracle.ForEach(func(tr rdf.Triple) bool {
		if !got.Contains(tr) {
			missing = append(missing, tr)
			return len(missing) < 5
		}
		return true
	})
	if len(missing) > 0 {
		t.Fatalf("engine closure missing %v", missing)
	}
}

func TestEngineSimpleTransitivity(t *testing.T) {
	st, stats := runEngine(t, rules.RhoDF(), Config{}, []rdf.Triple{sc(a, b), sc(b, c)})
	if !st.Contains(sc(a, c)) {
		t.Fatal("missing inferred (a sc c)")
	}
	if stats.Input != 2 || stats.Inferred != 1 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestEngineCaxScoAcrossBatches(t *testing.T) {
	// Schema first, then instance data much later (tests store⋈delta
	// direction across separate flushes).
	st := store.New()
	e := New(st, rules.RhoDF(), Config{BufferSize: 1})
	e.Add(sc(a, b))
	ctx := context.Background()
	if err := e.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	e.Add(ty(x, a))
	if err := e.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if !st.Contains(ty(x, b)) {
		t.Fatal("cax-sco did not fire across batches")
	}
}

func TestEngineMatchesBaselineOnChains(t *testing.T) {
	for _, n := range []int{5, 25, 80} {
		for _, bufSize := range []int{1, 7, 128, 100000} {
			input := chain(n)
			st, _ := runEngine(t, rules.RhoDF(), Config{BufferSize: bufSize, Timeout: 2 * time.Millisecond}, input)
			assertSameClosure(t, rules.RhoDF, st, input)
		}
	}
}

func TestEngineMatchesBaselineRDFS(t *testing.T) {
	input := chain(30)
	input = append(input,
		rdf.T(p2, rdf.IDDomain, c),
		sp(p1, p2),
		rdf.T(x, p1, y),
		ty(p1, rdf.IDProperty),
		rdf.T(p2, rdf.IDRange, d),
	)
	st, _ := runEngine(t, rules.RDFS(), Config{BufferSize: 4}, input)
	assertSameClosure(t, rules.RDFS, st, input)
}

func TestEngineChainClosureFormula(t *testing.T) {
	n := 60
	st, stats := runEngine(t, rules.RhoDF(), Config{}, chain(n))
	m := n - 1
	want := m * (m - 1) / 2
	if int(stats.Inferred) != want {
		t.Fatalf("inferred %d, want %d", stats.Inferred, want)
	}
	if st.Len() != len(chain(n))+want {
		t.Fatalf("store size %d, want %d", st.Len(), len(chain(n))+want)
	}
}

// Property: streaming the same input in any order, in any chunking, with
// any buffer size, yields the same closure as the batch oracle
// (incremental ≡ batch).
func TestEngineIncrementalEqualsBatchProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// Random small ontology: classes, properties, instances.
		var input []rdf.Triple
		nc := rng.Intn(8) + 2
		class := func(i int) rdf.ID { return rdf.FirstCustomID + rdf.ID(i) }
		prop := func(i int) rdf.ID { return rdf.FirstCustomID + 100 + rdf.ID(i) }
		inst := func(i int) rdf.ID { return rdf.FirstCustomID + 200 + rdf.ID(i) }
		for i := 0; i < nc; i++ {
			input = append(input, sc(class(rng.Intn(nc)), class(rng.Intn(nc))))
		}
		np := rng.Intn(4) + 1
		for i := 0; i < np; i++ {
			input = append(input, sp(prop(rng.Intn(np)), prop(rng.Intn(np))))
			input = append(input, rdf.T(prop(rng.Intn(np)), rdf.IDDomain, class(rng.Intn(nc))))
			input = append(input, rdf.T(prop(rng.Intn(np)), rdf.IDRange, class(rng.Intn(nc))))
		}
		for i := 0; i < rng.Intn(20)+5; i++ {
			switch rng.Intn(2) {
			case 0:
				input = append(input, ty(inst(rng.Intn(10)), class(rng.Intn(nc))))
			default:
				input = append(input, rdf.T(inst(rng.Intn(10)), prop(rng.Intn(np)), inst(rng.Intn(10))))
			}
		}
		rng.Shuffle(len(input), func(i, j int) { input[i], input[j] = input[j], input[i] })

		st := store.New()
		e := New(st, rules.RhoDF(), Config{BufferSize: rng.Intn(16) + 1, Timeout: time.Millisecond})
		for _, tr := range input {
			e.Add(tr)
			if rng.Intn(4) == 0 {
				time.Sleep(50 * time.Microsecond) // let timeouts interleave
			}
		}
		if err := e.Close(context.Background()); err != nil {
			return false
		}
		oracle, _, err := baseline.Closure(context.Background(), rules.RhoDF(), input)
		if err != nil {
			return false
		}
		if oracle.Len() != st.Len() {
			t.Logf("seed %d: engine %d oracle %d", seed, st.Len(), oracle.Len())
			return false
		}
		ok := true
		oracle.ForEach(func(tr rdf.Triple) bool {
			if !st.Contains(tr) {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: RDFS incremental ≡ batch, including the schema-trigger rules
// (rdfs6/8/10) and resource typing interacting with cax-sco.
func TestEngineRDFSIncrementalEqualsBatchProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var input []rdf.Triple
		id := func(i int) rdf.ID { return rdf.FirstCustomID + rdf.ID(i) }
		for i := 0; i < rng.Intn(20)+5; i++ {
			switch rng.Intn(4) {
			case 0:
				input = append(input, sc(id(rng.Intn(6)), id(rng.Intn(6))))
			case 1:
				input = append(input, ty(id(rng.Intn(6)), rdf.IDClass))
			case 2:
				input = append(input, ty(id(rng.Intn(6)+100), id(rng.Intn(6))))
			default:
				input = append(input, rdf.T(id(rng.Intn(6)+100), id(rng.Intn(3)+200), id(rng.Intn(6)+100)))
			}
		}
		rng.Shuffle(len(input), func(i, j int) { input[i], input[j] = input[j], input[i] })
		st := store.New()
		e := New(st, rules.RDFS(), Config{BufferSize: rng.Intn(8) + 1})
		e.AddAll(input)
		if err := e.Close(context.Background()); err != nil {
			return false
		}
		oracle, _, err := baseline.Closure(context.Background(), rules.RDFS(), input)
		if err != nil || oracle.Len() != st.Len() {
			return false
		}
		ok := true
		oracle.ForEach(func(tr rdf.Triple) bool {
			if !st.Contains(tr) {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestEngineConcurrentAdders(t *testing.T) {
	// Multiple input managers feeding the engine in parallel (paper:
	// "Multiple instances of input manager allows to retrieve data from
	// various sources").
	input := chain(120)
	st := store.New()
	e := New(st, rules.RhoDF(), Config{BufferSize: 16})
	var wg sync.WaitGroup
	const adders = 4
	for g := 0; g < adders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < len(input); i += adders {
				e.Add(input[i])
			}
		}(g)
	}
	wg.Wait()
	if err := e.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	assertSameClosure(t, rules.RhoDF, st, input)
}

func TestEngineDuplicateInputDropped(t *testing.T) {
	st := store.New()
	e := New(st, rules.RhoDF(), Config{})
	e.Add(sc(a, b))
	e.Add(sc(a, b))
	e.Add(sc(a, b))
	if err := e.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	stats := e.Stats()
	if stats.Input != 1 || stats.DuplicateInput != 2 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestEngineTimeoutFlushDrivesInference(t *testing.T) {
	// A buffer below capacity must still flush via timeout, without Wait.
	st := store.New()
	e := New(st, rules.RhoDF(), Config{BufferSize: 1000, Timeout: 5 * time.Millisecond})
	e.Add(sc(a, b))
	e.Add(sc(b, c))
	deadline := time.Now().Add(5 * time.Second)
	for !st.Contains(sc(a, c)) {
		if time.Now().After(deadline) {
			t.Fatal("timeout flush never fired inference")
		}
		time.Sleep(time.Millisecond)
	}
	stats := e.Stats()
	timeouts := int64(0)
	for _, m := range stats.Modules {
		timeouts += m.TimeoutFlushes
	}
	if timeouts == 0 {
		t.Fatal("no timeout flush recorded")
	}
	if err := e.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestEngineBufferFullFlushRecorded(t *testing.T) {
	st := store.New()
	e := New(st, rules.RhoDF(), Config{BufferSize: 2, Timeout: time.Hour})
	for i := 0; i < 10; i++ {
		e.Add(sc(rdf.FirstCustomID+rdf.ID(i), rdf.FirstCustomID+rdf.ID(i+1)))
	}
	if err := e.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	ms := e.Stats().ModuleByName("scm-sco")
	if ms.BufferFullFlushes == 0 {
		t.Fatalf("scm-sco stats = %+v, want buffer-full flushes", ms)
	}
	if ms.Routed < 10 {
		t.Fatalf("scm-sco routed = %d, want >= 10", ms.Routed)
	}
}

func TestEngineStatsConsistency(t *testing.T) {
	input := chain(50)
	_, stats := runEngine(t, rules.RhoDF(), Config{BufferSize: 8}, input)
	var fresh int64
	for _, m := range stats.Modules {
		fresh += m.Fresh
		if m.Derived < m.Fresh {
			t.Fatalf("module %s derived %d < fresh %d", m.Rule, m.Derived, m.Fresh)
		}
	}
	if fresh != stats.Inferred {
		t.Fatalf("sum of module fresh %d != engine inferred %d", fresh, stats.Inferred)
	}
	if stats.Executions == 0 {
		t.Fatal("no executions recorded")
	}
	if stats.ModuleByName("no-such-rule") != (ModuleStats{}) {
		t.Fatal("unknown module should return zero stats")
	}
}

func TestEnginePanicIsolation(t *testing.T) {
	boom := &rules.CustomRule{
		RuleName: "boom",
		In:       []rdf.ID{rdf.IDSubClassOf},
		Out:      nil,
		Fn: func(_ rules.Source, delta []rdf.Triple, _ func(rdf.Triple)) {
			panic("injected failure")
		},
	}
	ruleset := append(rules.RhoDF(), boom)
	st := store.New()
	e := New(st, ruleset, Config{BufferSize: 1})
	e.Add(sc(a, b))
	e.Add(sc(b, c))
	if err := e.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Inference completed despite the panicking rule...
	if !st.Contains(sc(a, c)) {
		t.Fatal("panic in one rule blocked inference in others")
	}
	// ...and the failure is reported.
	if e.Err() == nil {
		t.Fatal("rule panic not surfaced via Err")
	}
}

func TestEngineAddAfterCloseIsNoop(t *testing.T) {
	st := store.New()
	e := New(st, rules.RhoDF(), Config{})
	if err := e.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	if e.Add(sc(a, b)) {
		t.Fatal("Add after Close reported fresh")
	}
	if st.Len() != 0 {
		t.Fatal("Add after Close mutated store")
	}
	// Double close is safe.
	if err := e.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestEngineWaitContextCancellation(t *testing.T) {
	st := store.New()
	// A rule that sleeps, so work stays in flight.
	slow := &rules.CustomRule{
		RuleName: "slow",
		In:       []rdf.ID{rdf.IDSubClassOf},
		Out:      nil,
		Fn: func(_ rules.Source, delta []rdf.Triple, _ func(rdf.Triple)) {
			time.Sleep(200 * time.Millisecond)
		},
	}
	e := New(st, []rules.Rule{slow}, Config{BufferSize: 1})
	e.Add(sc(a, b))
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := e.Wait(ctx); err == nil {
		t.Fatal("Wait ignored context cancellation")
	}
	// Clean up fully.
	if err := e.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestEngineWaitIdempotentAndReusable(t *testing.T) {
	st := store.New()
	e := New(st, rules.RhoDF(), Config{})
	ctx := context.Background()
	if err := e.Wait(ctx); err != nil { // empty engine quiesces immediately
		t.Fatal(err)
	}
	e.Add(sc(a, b))
	e.Add(sc(b, c))
	if err := e.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if !st.Contains(sc(a, c)) {
		t.Fatal("closure incomplete after Wait")
	}
	// Stream more after a Wait: engine keeps working.
	e.Add(sc(c, d))
	if err := e.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	for _, want := range []rdf.Triple{sc(a, d), sc(b, d)} {
		if !st.Contains(want) {
			t.Fatalf("missing %v after second Wait", want)
		}
	}
	if err := e.Close(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestEngineBackgroundKnowledge(t *testing.T) {
	// Pre-loaded store contents act as background knowledge: joins see
	// them even though they were never streamed.
	st := store.New()
	st.Add(ty(x, a))
	e := New(st, rules.RhoDF(), Config{})
	e.Add(sc(a, b))
	if err := e.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !st.Contains(ty(x, b)) {
		t.Fatal("background knowledge not joined")
	}
}

func TestEngineObserverEvents(t *testing.T) {
	var mu sync.Mutex
	events := map[string]int{}
	obs := &countingObserver{mu: &mu, events: events}
	st := store.New()
	e := New(st, rules.RhoDF(), Config{BufferSize: 1, Observer: obs})
	e.Add(sc(a, b))
	e.Add(sc(b, c))
	if err := e.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	for _, k := range []string{"input", "route", "flush", "execute"} {
		if events[k] == 0 {
			t.Errorf("observer never saw %q (events: %v)", k, events)
		}
	}
}

type countingObserver struct {
	mu     *sync.Mutex
	events map[string]int
}

func (o *countingObserver) OnInput(rdf.Triple)               { o.bump("input") }
func (o *countingObserver) OnRoute(string, rdf.Triple)       { o.bump("route") }
func (o *countingObserver) OnFlush(string, FlushReason, int) { o.bump("flush") }
func (o *countingObserver) OnExecute(string, int, int, int)  { o.bump("execute") }
func (o *countingObserver) bump(k string) {
	o.mu.Lock()
	o.events[k]++
	o.mu.Unlock()
}

func TestEngineGraphExposed(t *testing.T) {
	e := New(store.New(), rules.RhoDF(), Config{})
	defer e.Close(context.Background())
	if !e.Graph().HasEdge("scm-sco", "cax-sco") {
		t.Fatal("engine graph missing Figure 2 edge")
	}
}

func TestEngineBufferedTriples(t *testing.T) {
	st := store.New()
	e := New(st, rules.RhoDF(), Config{BufferSize: 1000, Timeout: time.Hour})
	e.Add(sc(a, b))
	if e.BufferedTriples() == 0 {
		t.Fatal("triple not buffered")
	}
	if err := e.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	if e.BufferedTriples() != 0 {
		t.Fatal("buffers not drained by Close")
	}
}

func TestFlushReasonString(t *testing.T) {
	if FlushFull.String() != "full" || FlushTimeout.String() != "timeout" ||
		FlushExplicit.String() != "explicit" || FlushReason(9).String() != "unknown" {
		t.Fatal("FlushReason.String mismatch")
	}
}

func TestEngineLargeStreamThroughput(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	// A moderately large BSBM-like mix, checking end-to-end completeness.
	rng := rand.New(rand.NewSource(42))
	var input []rdf.Triple
	for i := 0; i < 120; i++ {
		input = append(input, sc(rdf.FirstCustomID+rdf.ID(rng.Intn(60)), rdf.FirstCustomID+rdf.ID(rng.Intn(60))))
	}
	for i := 0; i < 3000; i++ {
		input = append(input, ty(rdf.FirstCustomID+1000+rdf.ID(i), rdf.FirstCustomID+rdf.ID(rng.Intn(60))))
	}
	st, _ := runEngine(t, rules.RhoDF(), Config{}, input)
	assertSameClosure(t, rules.RhoDF, st, input)
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.BufferSize != DefaultBufferSize || c.Timeout != DefaultTimeout || c.Workers <= 0 {
		t.Fatalf("defaults = %+v", c)
	}
	c2 := Config{BufferSize: 7, Timeout: time.Second, Workers: 3}.withDefaults()
	if c2.BufferSize != 7 || c2.Timeout != time.Second || c2.Workers != 3 {
		t.Fatalf("explicit config overridden: %+v", c2)
	}
}

func TestPoolDrainsQueueOnStop(t *testing.T) {
	var mu sync.Mutex
	ran := 0
	p := newPool(2, func(task) {
		mu.Lock()
		ran++
		mu.Unlock()
	})
	for i := 0; i < 50; i++ {
		p.submit(task{})
	}
	p.stop()
	mu.Lock()
	defer mu.Unlock()
	if ran != 50 {
		t.Fatalf("pool ran %d tasks before stop, want 50 (queue must drain)", ran)
	}
	if p.submit(task{}) {
		t.Fatal("submit after stop accepted")
	}
}

func TestBufferStaleness(t *testing.T) {
	buf := newBuffer(10)
	if buf.takeAll() != nil {
		t.Fatal("empty buffer takeAll should be nil")
	}
	buf.add(sc(a, b))
	now := time.Now()
	if got := buf.takeStale(time.Minute, now); got != nil {
		t.Fatal("fresh buffer reported stale")
	}
	if got := buf.takeStale(0, now.Add(time.Second)); len(got) != 1 {
		t.Fatalf("stale buffer not taken: %v", got)
	}
	if buf.size() != 0 {
		t.Fatal("takeStale did not clear buffer")
	}
}

func TestBufferCapacityFlush(t *testing.T) {
	buf := newBuffer(3)
	if buf.add(sc(a, b)) != nil || buf.add(sc(b, c)) != nil {
		t.Fatal("premature flush")
	}
	batch := buf.add(sc(c, d))
	if len(batch) != 3 {
		t.Fatalf("flush batch = %v", batch)
	}
	if buf.size() != 0 {
		t.Fatal("buffer not reset after flush")
	}
}

func ExampleEngine() {
	st := store.New()
	e := New(st, rules.RhoDF(), Config{})
	e.Add(rdf.T(a, rdf.IDSubClassOf, b))
	e.Add(rdf.T(b, rdf.IDSubClassOf, c))
	_ = e.Close(context.Background())
	fmt.Println(st.Contains(rdf.T(a, rdf.IDSubClassOf, c)))
	// Output: true
}
