package reasoner

import (
	"context"
	"testing"

	"repro/internal/rdf"
	"repro/internal/rules"
	"repro/internal/store"
)

func TestProvenanceTracksOrigins(t *testing.T) {
	st := store.New()
	e := New(st, rules.RhoDF(), Config{TrackProvenance: true})
	e.Add(sc(a, b))
	e.Add(sc(b, c))
	e.Add(ty(x, a))
	if err := e.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		triple rdf.Triple
		want   string
	}{
		{sc(a, b), ProvenanceExplicit},
		{ty(x, a), ProvenanceExplicit},
		{sc(a, c), "scm-sco"},
		{ty(x, b), "cax-sco"},
	}
	for _, cse := range cases {
		got, ok := e.Provenance(cse.triple)
		if !ok || got != cse.want {
			t.Errorf("Provenance(%v) = (%q, %v), want (%q, true)", cse.triple, got, ok, cse.want)
		}
	}
	// ty(x, c) could come from cax-sco via either chain hop: any rule
	// name is fine, but it must be tracked and not explicit.
	got, ok := e.Provenance(ty(x, c))
	if !ok || got == ProvenanceExplicit {
		t.Fatalf("Provenance(ty(x,c)) = (%q, %v)", got, ok)
	}
	// Unknown triple.
	if _, ok := e.Provenance(sc(c, a)); ok {
		t.Fatal("provenance reported for absent triple")
	}
}

func TestProvenanceOffByDefault(t *testing.T) {
	st := store.New()
	e := New(st, rules.RhoDF(), Config{})
	e.Add(sc(a, b))
	if err := e.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, ok := e.Provenance(sc(a, b)); ok {
		t.Fatal("provenance available without TrackProvenance")
	}
}

func TestProvenanceFirstDerivationWins(t *testing.T) {
	// A triple asserted explicitly and also derivable keeps the explicit
	// origin (asserted first).
	st := store.New()
	e := New(st, rules.RhoDF(), Config{TrackProvenance: true})
	e.Add(sc(a, c))
	e.Add(sc(a, b))
	e.Add(sc(b, c))
	if err := e.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	got, ok := e.Provenance(sc(a, c))
	if !ok || got != ProvenanceExplicit {
		t.Fatalf("Provenance = (%q, %v), want explicit", got, ok)
	}
}
