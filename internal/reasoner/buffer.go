package reasoner

import (
	"sync"
	"time"

	"repro/internal/rdf"
)

// buffer accumulates the triples routed to one rule module between rule
// executions (paper §2, "Buffers"). It is flushed when it reaches its
// capacity, when it sits inactive past the engine timeout, or explicitly
// while draining.
type buffer struct {
	mu      sync.Mutex
	items   []rdf.Triple
	lastAdd time.Time
	cap     int
}

func newBuffer(capacity int) *buffer {
	return &buffer{cap: capacity, items: make([]rdf.Triple, 0, capacity)}
}

// add appends t. If the buffer reached capacity it returns the full batch
// (now owned by the caller) and resets; otherwise it returns nil.
func (b *buffer) add(t rdf.Triple) []rdf.Triple {
	b.mu.Lock()
	b.items = append(b.items, t)
	b.lastAdd = time.Now()
	if len(b.items) >= b.cap {
		batch := b.items
		b.items = make([]rdf.Triple, 0, b.cap)
		b.mu.Unlock()
		return batch
	}
	b.mu.Unlock()
	return nil
}

// addBatch appends all of ts under one lock acquisition. If the buffer
// reached capacity it returns the full batch (now owned by the caller)
// and resets; otherwise it returns nil. As with add, the whole buffer is
// flushed at once, so the returned batch may exceed the capacity.
func (b *buffer) addBatch(ts []rdf.Triple) []rdf.Triple {
	b.mu.Lock()
	b.items = append(b.items, ts...)
	b.lastAdd = time.Now()
	if len(b.items) >= b.cap {
		batch := b.items
		b.items = make([]rdf.Triple, 0, b.cap)
		b.mu.Unlock()
		return batch
	}
	b.mu.Unlock()
	return nil
}

// takeStale returns the buffered triples if the buffer is non-empty and
// has not seen an add since before now-timeout; nil otherwise.
func (b *buffer) takeStale(timeout time.Duration, now time.Time) []rdf.Triple {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.items) == 0 || now.Sub(b.lastAdd) < timeout {
		return nil
	}
	batch := b.items
	b.items = make([]rdf.Triple, 0, b.cap)
	return batch
}

// takeAll returns and clears the buffered triples (nil when empty).
func (b *buffer) takeAll() []rdf.Triple {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.items) == 0 {
		return nil
	}
	batch := b.items
	b.items = make([]rdf.Triple, 0, b.cap)
	return batch
}

// size returns the number of buffered triples.
func (b *buffer) size() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.items)
}

// capacity returns the current flush threshold.
func (b *buffer) capacity() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.cap
}

// setCapacity changes the flush threshold (adaptive scheduling). Values
// below 1 are clamped to 1. If the buffer already holds at least the new
// capacity, the overflow is returned for immediate flushing.
func (b *buffer) setCapacity(n int) []rdf.Triple {
	if n < 1 {
		n = 1
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.cap = n
	if len(b.items) >= b.cap {
		batch := b.items
		b.items = make([]rdf.Triple, 0, b.cap)
		return batch
	}
	return nil
}
