package reasoner

import (
	"sync"
	"time"

	"repro/internal/rdf"
)

// buffer accumulates the triples routed to one rule module between rule
// executions (paper §2, "Buffers"). It is flushed when it reaches its
// capacity, when it sits inactive past the engine timeout, or explicitly
// while draining.
//
// Staleness is tracked without reading the clock on the add path: each
// add bumps seq, and the timeout scanner stamps seenAt the first time it
// observes a given seq. A buffer is stale once a stamped seq has sat
// unchanged past the timeout, so flush latency lands in
// [timeout, timeout+2·tick) where tick is the scanner interval.
type buffer struct {
	mu      sync.Mutex
	items   []rdf.Triple
	seq     uint64    // bumped on every add
	seenSeq uint64    // last seq observed by takeStale
	seenAt  time.Time // scanner time when seenSeq was first observed
	cap     int
}

func newBuffer(capacity int) *buffer {
	return &buffer{cap: capacity, items: make([]rdf.Triple, 0, capacity)}
}

// add appends t. If the buffer reached capacity it returns the full batch
// (now owned by the caller) and resets; otherwise it returns nil.
func (b *buffer) add(t rdf.Triple) []rdf.Triple {
	b.mu.Lock()
	b.items = append(b.items, t)
	b.seq++
	if len(b.items) >= b.cap {
		batch := b.items
		b.items = make([]rdf.Triple, 0, b.cap)
		b.mu.Unlock()
		return batch
	}
	b.mu.Unlock()
	return nil
}

// addBatch appends all of ts under one lock acquisition. If the buffer
// reached capacity it returns the full batch (now owned by the caller)
// and resets; otherwise it returns nil. As with add, the whole buffer is
// flushed at once, so the returned batch may exceed the capacity.
func (b *buffer) addBatch(ts []rdf.Triple) []rdf.Triple {
	b.mu.Lock()
	b.items = append(b.items, ts...)
	b.seq++
	if len(b.items) >= b.cap {
		batch := b.items
		b.items = make([]rdf.Triple, 0, b.cap)
		b.mu.Unlock()
		return batch
	}
	b.mu.Unlock()
	return nil
}

// takeStale returns the buffered triples if the buffer is non-empty and
// has sat unchanged since a scanner observation at least timeout ago;
// nil otherwise. now is the scanner's clock reading — the buffer itself
// never reads the clock.
func (b *buffer) takeStale(timeout time.Duration, now time.Time) []rdf.Triple {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.items) == 0 {
		return nil
	}
	if b.seq != b.seenSeq {
		// New content since the last scan: stamp it and wait for the
		// timeout to elapse from this observation.
		b.seenSeq = b.seq
		b.seenAt = now
		return nil
	}
	if now.Sub(b.seenAt) < timeout {
		return nil
	}
	batch := b.items
	b.items = make([]rdf.Triple, 0, b.cap)
	return batch
}

// takeAll returns and clears the buffered triples (nil when empty).
func (b *buffer) takeAll() []rdf.Triple {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.items) == 0 {
		return nil
	}
	batch := b.items
	b.items = make([]rdf.Triple, 0, b.cap)
	return batch
}

// size returns the number of buffered triples.
func (b *buffer) size() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.items)
}

// capacity returns the current flush threshold.
func (b *buffer) capacity() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.cap
}

// setCapacity changes the flush threshold (adaptive scheduling). Values
// below 1 are clamped to 1. If the buffer already holds at least the new
// capacity, the overflow is returned for immediate flushing.
func (b *buffer) setCapacity(n int) []rdf.Triple {
	if n < 1 {
		n = 1
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.cap = n
	if len(b.items) >= b.cap {
		batch := b.items
		b.items = make([]rdf.Triple, 0, b.cap)
		return batch
	}
	return nil
}
