package reasoner

import "repro/internal/rdf"

// FlushReason records why a buffer flushed.
type FlushReason int

const (
	// FlushFull: the buffer reached its configured size.
	FlushFull FlushReason = iota
	// FlushTimeout: the buffer sat inactive past the configured timeout.
	FlushTimeout
	// FlushExplicit: the engine forced the flush (Wait/Close draining).
	FlushExplicit
)

// String returns the reason's name.
func (r FlushReason) String() string {
	switch r {
	case FlushFull:
		return "full"
	case FlushTimeout:
		return "timeout"
	case FlushExplicit:
		return "explicit"
	default:
		return "unknown"
	}
}

// Observer receives engine events. All callbacks are invoked synchronously
// from engine goroutines, possibly concurrently; implementations must be
// thread-safe and fast. The demo recorder (internal/demo) is the main
// implementation.
type Observer interface {
	// OnInput fires for each explicit triple accepted into the store.
	OnInput(t rdf.Triple)
	// OnRoute fires when a triple is placed into a rule's buffer.
	OnRoute(rule string, t rdf.Triple)
	// OnFlush fires when a rule's buffer flushes n triples into a new
	// rule-module instance.
	OnFlush(rule string, reason FlushReason, n int)
	// OnExecute fires when a rule-module instance finishes: it processed
	// deltaSize triples, emitted derived triples, of which fresh were new
	// to the store.
	OnExecute(rule string, deltaSize, derived, fresh int)
}

// NopObserver is an Observer that ignores every event; useful for
// embedding when only some callbacks are interesting.
type NopObserver struct{}

// OnInput implements Observer.
func (NopObserver) OnInput(rdf.Triple) {}

// OnRoute implements Observer.
func (NopObserver) OnRoute(string, rdf.Triple) {}

// OnFlush implements Observer.
func (NopObserver) OnFlush(string, FlushReason, int) {}

// OnExecute implements Observer.
func (NopObserver) OnExecute(string, int, int, int) {}

var _ Observer = NopObserver{}
