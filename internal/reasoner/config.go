// Package reasoner implements the Slider engine: the paper's primary
// contribution. It wires one rule module per inference rule, each with its
// own buffer and distributor, over a shared triple store, and evaluates
// rules incrementally as triples stream in (paper §2, Figure 1).
//
// Data flow for one incoming triple:
//
//	Add → store (dedup) → route to matching rule buffers
//	buffer full or stale → flush → rule-module instance on the thread pool
//	instance: delta ⋈ store (both directions) → inferred triples
//	distributor: store.Add (dedup) → route fresh triples onward
//
// Inference is complete when no triples remain buffered and no instances
// are running; Engine.Wait detects that quiescence.
package reasoner

import (
	"runtime"
	"time"
)

// Config tunes the engine. The zero value selects defaults.
type Config struct {
	// BufferSize is the number of triples a rule buffer accumulates
	// before it fires a rule-module instance (paper: "how many triples
	// are needed to fire a new rule execution"). Default 128.
	BufferSize int

	// Timeout forces a non-empty buffer to flush after this much
	// inactivity, bounding inference latency on slow streams (paper:
	// "after how long an inactive buffer is forced to flush"). Default
	// 20ms.
	Timeout time.Duration

	// Workers is the thread-pool size. Default runtime.GOMAXPROCS(0).
	Workers int

	// Observer, if non-nil, receives fine-grained engine events; the
	// demo's recorder plugs in here. Observer callbacks run synchronously
	// on engine goroutines and must be fast.
	Observer Observer

	// Adaptive enables run-time buffer-capacity adaptation per rule
	// module (see adaptive.go): unproductive modules batch more,
	// productive ones stay reactive. Completeness is unaffected.
	Adaptive bool

	// TrackProvenance records, for every triple in the store, whether it
	// was explicitly asserted or which rule first derived it
	// (Engine.Provenance). Costs one map entry per triple.
	TrackProvenance bool
}

// Defaults used when Config fields are zero.
const (
	DefaultBufferSize = 128
	DefaultTimeout    = 20 * time.Millisecond
)

func (c Config) withDefaults() Config {
	if c.BufferSize <= 0 {
		c.BufferSize = DefaultBufferSize
	}
	if c.Timeout <= 0 {
		c.Timeout = DefaultTimeout
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}
