package reasoner

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/rdf"
	"repro/internal/rules"
	"repro/internal/store"
)

func TestEngineEmptyRuleset(t *testing.T) {
	st := store.New()
	e := New(st, nil, Config{})
	if !e.Add(sc(a, b)) {
		t.Fatal("Add with empty ruleset failed")
	}
	if err := e.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	if st.Len() != 1 {
		t.Fatalf("store = %d triples", st.Len())
	}
	if s := e.Stats(); s.Inferred != 0 || len(s.Modules) != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestEngineConcurrentWaiters(t *testing.T) {
	st := store.New()
	e := New(st, rules.RhoDF(), Config{BufferSize: 4})
	for i := 0; i < 100; i++ {
		e.Add(sc(rdf.FirstCustomID+rdf.ID(i), rdf.FirstCustomID+rdf.ID(i+1)))
	}
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			errs[g] = e.Wait(context.Background())
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("waiter %d: %v", g, err)
		}
	}
	if err := e.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestEngineAddDuringWait(t *testing.T) {
	st := store.New()
	e := New(st, rules.RhoDF(), Config{BufferSize: 2})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			e.Add(sc(rdf.FirstCustomID+rdf.ID(i), rdf.FirstCustomID+rdf.ID(i+1)))
		}
	}()
	// Wait repeatedly while the adder races; final Wait after the adder
	// finishes must observe the complete closure.
	for i := 0; i < 5; i++ {
		if err := e.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	<-done
	if err := e.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	want := 200 + 200*199/2
	if st.Len() != want {
		t.Fatalf("store = %d triples, want %d", st.Len(), want)
	}
}

func TestEngineSelfLoopTriple(t *testing.T) {
	st := store.New()
	e := New(st, rules.RhoDF(), Config{})
	e.Add(sc(a, a)) // reflexive subclass
	e.Add(ty(x, a))
	if err := e.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !st.Contains(ty(x, a)) || st.Len() != 2 {
		t.Fatalf("self-loop handling wrong: %v", st.Snapshot())
	}
}

func TestEngineRapidCloseAfterBurst(t *testing.T) {
	// Close immediately after a large burst: everything must still be
	// materialised (Close drains).
	st := store.New()
	e := New(st, rules.RhoDF(), Config{BufferSize: 64, Timeout: time.Hour})
	for i := 0; i < 150; i++ {
		e.Add(sc(rdf.FirstCustomID+rdf.ID(i), rdf.FirstCustomID+rdf.ID(i+1)))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := e.Close(ctx); err != nil {
		t.Fatal(err)
	}
	want := 150 + 150*149/2
	if st.Len() != want {
		t.Fatalf("store = %d, want %d", st.Len(), want)
	}
}

func TestEngineManyModulesSameInput(t *testing.T) {
	// Several rules listening to the same predicate all receive the
	// delta (one module per rule, as in Figure 1).
	seen := make([]int, 3)
	var mu sync.Mutex
	var ruleset []rules.Rule
	for i := 0; i < 3; i++ {
		i := i
		ruleset = append(ruleset, &rules.CustomRule{
			RuleName: "listener-" + string(rune('a'+i)),
			In:       []rdf.ID{rdf.IDSubClassOf},
			Fn: func(_ rules.Source, delta []rdf.Triple, _ func(rdf.Triple)) {
				mu.Lock()
				seen[i] += len(delta)
				mu.Unlock()
			},
		})
	}
	st := store.New()
	e := New(st, ruleset, Config{BufferSize: 1})
	e.Add(sc(a, b))
	e.Add(sc(b, c))
	if err := e.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	for i, n := range seen {
		if n != 2 {
			t.Fatalf("listener %d saw %d triples, want 2", i, n)
		}
	}
}

func TestEngineInferredRoutedOnward(t *testing.T) {
	// A chain of two custom rules: first produces P2 triples from P1,
	// second counts P2 triples — verifying distributor routing.
	p1 := rdf.FirstCustomID + 500
	p2 := rdf.FirstCustomID + 501
	producer := &rules.CustomRule{
		RuleName: "producer",
		In:       []rdf.ID{p1},
		Out:      []rdf.ID{p2},
		Fn: func(_ rules.Source, delta []rdf.Triple, emit func(rdf.Triple)) {
			for _, t := range delta {
				if t.P == p1 {
					emit(rdf.T(t.S, p2, t.O))
				}
			}
		},
	}
	var count int
	var mu sync.Mutex
	consumer := &rules.CustomRule{
		RuleName: "consumer",
		In:       []rdf.ID{p2},
		Fn: func(_ rules.Source, delta []rdf.Triple, _ func(rdf.Triple)) {
			mu.Lock()
			count += len(delta)
			mu.Unlock()
		},
	}
	st := store.New()
	e := New(st, []rules.Rule{producer, consumer}, Config{BufferSize: 1})
	for i := 0; i < 10; i++ {
		e.Add(rdf.T(rdf.FirstCustomID+rdf.ID(i), p1, x))
	}
	if err := e.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if count != 10 {
		t.Fatalf("consumer saw %d inferred triples, want 10", count)
	}
}
