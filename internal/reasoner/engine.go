package reasoner

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/rdf"
	"repro/internal/rules"
	"repro/internal/store"
	"repro/internal/trace"
)

// module binds one inference rule to its buffer and counters — the
// paper's "rule module". Rule-module *instances* are the tasks spawned by
// buffer flushes.
type module struct {
	rule rules.Rule
	buf  *buffer
	c    moduleCounters
	// idx is the module's position in Engine.modules; batch routing uses
	// it to bucket triples per destination module.
	idx int
	// zeroStreak counts consecutive fruitless executions (adaptive
	// scheduling heuristic; approximate under concurrency by design).
	zeroStreak atomic.Int32
}

// Engine is the Slider reasoner.
type Engine struct {
	cfg   Config
	store *store.Store
	graph *rules.DependencyGraph

	modules []*module
	// byPred routes triples to the modules whose rule consumes the
	// triple's predicate; universal modules receive everything.
	byPred    map[rdf.ID][]*module
	universal []*module

	pool *pool
	// inflight counts units of unfinished work: every triple sitting in
	// a buffer or inside a running instance's delta contributes one.
	// Quiescence (inference complete) is inflight == 0 with all buffers
	// empty, which Wait polls for while force-flushing.
	inflight atomic.Int64

	input      atomic.Int64
	dupInput   atomic.Int64
	inferred   atomic.Int64
	duplicates atomic.Int64

	stopTimeouts chan struct{}
	timeoutsDone sync.WaitGroup
	closed       atomic.Bool

	panicMu  sync.Mutex
	panicErr error

	// provenance maps triples to the rule that first derived them (or
	// ProvenanceExplicit); nil unless Config.TrackProvenance.
	provMu     sync.Mutex
	provenance map[rdf.Triple]string
}

// ProvenanceExplicit marks explicitly asserted triples in provenance
// lookups.
const ProvenanceExplicit = "explicit"

// New builds an engine over the given store and ruleset. The store may
// already contain triples; they participate in joins as background
// knowledge but are not re-derived from (stream them through Add to infer
// from them).
func New(st *store.Store, ruleset []rules.Rule, cfg Config) *Engine {
	cfg = cfg.withDefaults()
	e := &Engine{
		cfg:          cfg,
		store:        st,
		graph:        rules.BuildDependencyGraph(ruleset),
		byPred:       make(map[rdf.ID][]*module),
		stopTimeouts: make(chan struct{}),
	}
	for i, r := range ruleset {
		m := &module{rule: r, buf: newBuffer(cfg.BufferSize), idx: i}
		e.modules = append(e.modules, m)
		if ins := r.Inputs(); ins == nil {
			e.universal = append(e.universal, m)
		} else {
			for _, p := range ins {
				e.byPred[p] = append(e.byPred[p], m)
			}
		}
	}
	if cfg.TrackProvenance {
		e.provenance = make(map[rdf.Triple]string)
	}
	e.pool = newPool(cfg.Workers, e.runInstance)
	e.timeoutsDone.Add(1)
	go e.timeoutLoop()
	return e
}

// recordProvenance notes the origin of a fresh triple.
func (e *Engine) recordProvenance(t rdf.Triple, origin string) {
	if e.provenance == nil {
		return
	}
	e.provMu.Lock()
	if _, dup := e.provenance[t]; !dup {
		e.provenance[t] = origin
	}
	e.provMu.Unlock()
}

// recordProvenanceBatch notes the origin of a batch of fresh triples
// under one lock acquisition.
func (e *Engine) recordProvenanceBatch(ts []rdf.Triple, origin string) {
	if e.provenance == nil {
		return
	}
	e.provMu.Lock()
	for _, t := range ts {
		if _, dup := e.provenance[t]; !dup {
			e.provenance[t] = origin
		}
	}
	e.provMu.Unlock()
}

// Provenance reports how a triple entered the store: ProvenanceExplicit
// for asserted triples, the deriving rule's name for inferred ones.
// ok=false when the triple is unknown or provenance tracking is off.
func (e *Engine) Provenance(t rdf.Triple) (string, bool) {
	if e.provenance == nil {
		return "", false
	}
	e.provMu.Lock()
	defer e.provMu.Unlock()
	origin, ok := e.provenance[t]
	return origin, ok
}

// Store returns the engine's triple store.
func (e *Engine) Store() *store.Store { return e.store }

// Graph returns the rules dependency graph built at initialisation.
func (e *Engine) Graph() *rules.DependencyGraph { return e.graph }

// Add streams one explicit triple into the reasoner. It returns true if
// the triple was new. Add is safe for concurrent use; multiple input
// managers can feed the engine in parallel. Adding to a closed engine
// returns false.
func (e *Engine) Add(t rdf.Triple) bool {
	if e.closed.Load() {
		return false
	}
	// Store first, then route: this ordering guarantees that whenever a
	// rule instance runs, the store contains every triple of its delta,
	// so delta⋈store joins subsume delta⋈delta (see package rules).
	if !e.store.Add(t) {
		e.dupInput.Add(1)
		return false
	}
	e.input.Add(1)
	e.recordProvenance(t, ProvenanceExplicit)
	if obs := e.cfg.Observer; obs != nil {
		obs.OnInput(t)
	}
	e.route(t)
	return true
}

// AddAll streams a batch of triples; returns how many were new.
func (e *Engine) AddAll(ts []rdf.Triple) int {
	return len(e.AddBatch(ts))
}

// AddBatch streams a batch of explicit triples and returns those that
// were new, in input order. Unlike a loop over Add, the whole batch takes
// one store insertion (grouped by predicate partition), one routing pass
// that buckets triples per destination module, and one buffer-lock
// acquisition per module — the batch-first ingest path. AddBatch is safe
// for concurrent use; adding to a closed engine is a no-op.
func (e *Engine) AddBatch(ts []rdf.Triple) []rdf.Triple {
	return e.AddBatchCtx(context.Background(), ts)
}

// AddBatchCtx is AddBatch carrying trace context: when ctx holds a
// span, the store insertion and the routing pass appear as child spans
// in the batch's flight trace.
func (e *Engine) AddBatchCtx(ctx context.Context, ts []rdf.Triple) []rdf.Triple {
	if e.closed.Load() || len(ts) == 0 {
		return nil
	}
	sp := trace.FromContext(ctx)
	// Store first, then route — same invariant as Add: the store holds
	// every triple of a delta before any instance consumes it.
	st := sp.Child("store.addbatch")
	fresh := e.store.AddBatch(ts)
	st.SetInt("fresh", int64(len(fresh)))
	st.End()
	if dup := len(ts) - len(fresh); dup > 0 {
		e.dupInput.Add(int64(dup))
	}
	if len(fresh) == 0 {
		return nil
	}
	e.input.Add(int64(len(fresh)))
	e.recordProvenanceBatch(fresh, ProvenanceExplicit)
	if obs := e.cfg.Observer; obs != nil {
		for _, t := range fresh {
			obs.OnInput(t)
		}
	}
	rt := sp.Child("engine.route")
	e.routeBatch(fresh)
	rt.End()
	return fresh
}

// Quiescent reports whether inference has drained: no triples buffered
// and no rule instances queued or running. The batch-lifecycle watcher
// polls it to close a flight's inference span; unlike Wait it never
// flushes timed buffers, so observing quiescence does not perturb it.
func (e *Engine) Quiescent() bool { return e.inflight.Load() == 0 }

// route places t into the buffer of every module whose rule consumes its
// predicate (plus all universal-input modules), flushing buffers that
// reach capacity.
func (e *Engine) route(t rdf.Triple) {
	obs := e.cfg.Observer
	for _, m := range e.byPred[t.P] {
		e.deliver(m, t, obs)
	}
	for _, m := range e.universal {
		e.deliver(m, t, obs)
	}
}

func (e *Engine) deliver(m *module, t rdf.Triple, obs Observer) {
	e.inflight.Add(1)
	m.c.routed.Add(1)
	if obs != nil {
		obs.OnRoute(m.rule.Name(), t)
	}
	if batch := m.buf.add(t); batch != nil {
		m.c.bufferFullFlushes.Add(1)
		if obs != nil {
			obs.OnFlush(m.rule.Name(), FlushFull, len(batch))
		}
		e.submit(m, batch)
	}
}

// routeBatch routes a batch of fresh triples: triples are bucketed per
// destination module in one pass, then each module takes one inflight
// update and one buffer-lock acquisition for its whole bucket.
func (e *Engine) routeBatch(ts []rdf.Triple) {
	if len(ts) == 1 {
		e.route(ts[0])
		return
	}
	buckets := make([][]rdf.Triple, len(e.modules))
	for _, t := range ts {
		for _, m := range e.byPred[t.P] {
			buckets[m.idx] = append(buckets[m.idx], t)
		}
		for _, m := range e.universal {
			buckets[m.idx] = append(buckets[m.idx], t)
		}
	}
	obs := e.cfg.Observer
	for i, bucket := range buckets {
		if len(bucket) == 0 {
			continue
		}
		e.deliverBatch(e.modules[i], bucket, obs)
	}
}

func (e *Engine) deliverBatch(m *module, ts []rdf.Triple, obs Observer) {
	e.inflight.Add(int64(len(ts)))
	m.c.routed.Add(int64(len(ts)))
	if obs != nil {
		for _, t := range ts {
			obs.OnRoute(m.rule.Name(), t)
		}
	}
	if batch := m.buf.addBatch(ts); batch != nil {
		m.c.bufferFullFlushes.Add(1)
		if obs != nil {
			obs.OnFlush(m.rule.Name(), FlushFull, len(batch))
		}
		e.submit(m, batch)
	}
}

// submit schedules a rule-module instance; if the pool is stopped the
// delta's work units are released so Wait cannot hang.
func (e *Engine) submit(m *module, delta []rdf.Triple) {
	if !e.pool.submit(task{m: m, delta: delta}) {
		e.inflight.Add(int64(-len(delta)))
	}
}

// runInstance executes one rule-module instance: the delta⋈store join
// followed by distribution of the inferred triples (paper's Distributor).
func (e *Engine) runInstance(tk task) {
	defer e.inflight.Add(int64(-len(tk.delta)))
	m := tk.m
	m.c.executions.Add(1)

	var out []rdf.Triple
	func() {
		defer func() {
			if r := recover(); r != nil {
				e.recordPanic(fmt.Errorf("reasoner: rule %s panicked: %v", m.rule.Name(), r))
			}
		}()
		m.rule.Apply(e.store, tk.delta, func(t rdf.Triple) { out = append(out, t) })
	}()

	// Distribute: deduplicate against the store in one batch insertion,
	// then route only fresh triples onward — the "duplicates limitation"
	// mechanism.
	freshTriples := e.store.AddBatch(out)
	fresh := len(freshTriples)
	if dup := len(out) - fresh; dup > 0 {
		e.duplicates.Add(int64(dup))
	}
	if fresh > 0 {
		e.inferred.Add(int64(fresh))
		m.c.fresh.Add(int64(fresh))
		e.recordProvenanceBatch(freshTriples, m.rule.Name())
		e.routeBatch(freshTriples)
	}
	m.c.derived.Add(int64(len(out)))
	if obs := e.cfg.Observer; obs != nil {
		obs.OnExecute(m.rule.Name(), len(tk.delta), len(out), fresh)
	}
	if e.cfg.Adaptive {
		e.adapt(m, fresh)
	}
}

func (e *Engine) recordPanic(err error) {
	e.panicMu.Lock()
	if e.panicErr == nil {
		e.panicErr = err
	}
	e.panicMu.Unlock()
}

// Err returns the first rule panic captured, if any. A panicking rule
// instance is isolated: the engine keeps running and completes inference
// for the remaining rules.
func (e *Engine) Err() error {
	e.panicMu.Lock()
	defer e.panicMu.Unlock()
	return e.panicErr
}

// timeoutLoop is the buffer-staleness scanner: a single goroutine flushes
// buffers that sat inactive past the configured timeout.
func (e *Engine) timeoutLoop() {
	defer e.timeoutsDone.Done()
	interval := e.cfg.Timeout / 4
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-e.stopTimeouts:
			return
		case now := <-ticker.C:
			for _, m := range e.modules {
				if batch := m.buf.takeStale(e.cfg.Timeout, now); batch != nil {
					m.c.timeoutFlushes.Add(1)
					if obs := e.cfg.Observer; obs != nil {
						obs.OnFlush(m.rule.Name(), FlushTimeout, len(batch))
					}
					e.submit(m, batch)
				}
			}
		}
	}
}

// flushAll force-flushes every non-empty buffer (used while draining).
func (e *Engine) flushAll() {
	for _, m := range e.modules {
		if batch := m.buf.takeAll(); batch != nil {
			m.c.explicitFlushes.Add(1)
			if obs := e.cfg.Observer; obs != nil {
				obs.OnFlush(m.rule.Name(), FlushExplicit, len(batch))
			}
			e.submit(m, batch)
		}
	}
}

// Wait blocks until inference has quiesced: every buffer is empty and no
// rule-module instance is running or queued. It force-flushes buffers
// while waiting, so it does not wait out buffer timeouts — but only when
// all outstanding work is sitting in buffers (no instance is running or
// queued), so draining does not fragment inference into tiny deltas while
// the thread pool is busy. Concurrent Add calls extend the wait.
//
// Polling backs off exponentially from 200µs to 2ms so a long wait does
// not spin a core; forcing a flush (progress) resets the backoff.
func (e *Engine) Wait(ctx context.Context) error {
	const (
		minDelay = 200 * time.Microsecond
		maxDelay = 2 * time.Millisecond
	)
	delay := minDelay
	timer := time.NewTimer(delay)
	defer timer.Stop()
	for {
		n := e.inflight.Load()
		if n == 0 {
			return nil
		}
		// inflight counts buffered triples plus triples inside queued or
		// running instances; when everything left is buffered, nothing
		// will flush it except a (slow) timeout — do it now.
		if int64(e.BufferedTriples()) >= n {
			e.flushAll()
			delay = minDelay
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-timer.C:
		}
		timer.Reset(delay)
		if delay < maxDelay {
			delay *= 2
			if delay > maxDelay {
				delay = maxDelay
			}
		}
	}
}

// Close drains outstanding work (bounded by ctx) and releases the
// engine's goroutines. The engine must not be used afterwards.
func (e *Engine) Close(ctx context.Context) error {
	if e.closed.Swap(true) {
		return nil
	}
	err := e.Wait(ctx)
	close(e.stopTimeouts)
	e.timeoutsDone.Wait()
	e.pool.stop()
	return err
}

// Stats returns a snapshot of the engine counters.
func (e *Engine) Stats() Stats {
	s := Stats{
		Input:          e.input.Load(),
		DuplicateInput: e.dupInput.Load(),
		Inferred:       e.inferred.Load(),
		Duplicates:     e.duplicates.Load(),
	}
	for _, m := range e.modules {
		ms := ModuleStats{
			Rule:              m.rule.Name(),
			Routed:            m.c.routed.Load(),
			Executions:        m.c.executions.Load(),
			BufferFullFlushes: m.c.bufferFullFlushes.Load(),
			TimeoutFlushes:    m.c.timeoutFlushes.Load(),
			ExplicitFlushes:   m.c.explicitFlushes.Load(),
			Derived:           m.c.derived.Load(),
			Fresh:             m.c.fresh.Load(),
			BufferCapacity:    m.buf.capacity(),
			CapacityGrows:     m.c.capacityGrows.Load(),
			CapacityShrinks:   m.c.capacityShrinks.Load(),
		}
		s.Executions += ms.Executions
		s.Modules = append(s.Modules, ms)
	}
	return s
}

// BufferedTriples reports the total number of triples currently sitting
// in rule buffers (diagnostics / demo).
func (e *Engine) BufferedTriples() int {
	n := 0
	for _, m := range e.modules {
		n += m.buf.size()
	}
	return n
}
