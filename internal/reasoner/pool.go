package reasoner

import (
	"sync"

	"repro/internal/rdf"
)

// task is one rule-module instance: a rule applied to a flushed delta.
type task struct {
	m     *module
	delta []rdf.Triple
}

// pool is the engine's thread pool (paper §2, "Thread Pool"). It runs a
// fixed number of workers over an unbounded FIFO queue. The queue must be
// unbounded: workers themselves enqueue follow-up tasks while
// distributing inferred triples, so a bounded queue could deadlock.
type pool struct {
	mu      sync.Mutex
	cond    *sync.Cond
	queue   []task
	stopped bool
	wg      sync.WaitGroup
}

// newPool starts workers goroutines executing run for each submitted task.
func newPool(workers int, run func(task)) *pool {
	p := &pool{}
	p.cond = sync.NewCond(&p.mu)
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			for {
				t, ok := p.next()
				if !ok {
					return
				}
				run(t)
			}
		}()
	}
	return p
}

// next blocks until a task is available or the pool stops. When stopping,
// the remaining queue is still drained.
func (p *pool) next() (task, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for len(p.queue) == 0 && !p.stopped {
		p.cond.Wait()
	}
	if len(p.queue) == 0 {
		return task{}, false
	}
	t := p.queue[0]
	p.queue = p.queue[1:]
	return t, true
}

// submit enqueues a task. Submitting to a stopped pool drops the task.
func (p *pool) submit(t task) bool {
	p.mu.Lock()
	if p.stopped {
		p.mu.Unlock()
		return false
	}
	p.queue = append(p.queue, t)
	p.mu.Unlock()
	p.cond.Signal()
	return true
}

// stop prevents new submissions, lets workers drain the queue, and waits
// for them to exit.
func (p *pool) stop() {
	p.mu.Lock()
	p.stopped = true
	p.mu.Unlock()
	p.cond.Broadcast()
	p.wg.Wait()
}

// pending returns the current queue length (diagnostics only).
func (p *pool) pending() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.queue)
}
