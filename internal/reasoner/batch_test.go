package reasoner

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/rdf"
	"repro/internal/rules"
	"repro/internal/store"
)

// TestAddBatchMatchesAddLoop proves the batch ingest path computes the
// same closure and the same counters as a per-triple Add loop.
func TestAddBatchMatchesAddLoop(t *testing.T) {
	input := chain(40)
	input = append(input, sp(p1, p2), rdf.T(x, p1, y))

	// Per-triple path.
	stLoop := store.New()
	eLoop := New(stLoop, rules.RhoDF(), Config{})
	for _, tr := range input {
		eLoop.Add(tr)
	}
	ctx := context.Background()
	if err := eLoop.Close(ctx); err != nil {
		t.Fatal(err)
	}
	loopStats := eLoop.Stats()

	// Batch path, duplicated input to exercise dup accounting.
	stBatch := store.New()
	eBatch := New(stBatch, rules.RhoDF(), Config{})
	fresh := eBatch.AddBatch(append(append([]rdf.Triple(nil), input...), input...))
	if len(fresh) != len(input) {
		t.Fatalf("AddBatch returned %d fresh, want %d", len(fresh), len(input))
	}
	for i, tr := range fresh {
		if tr != input[i] {
			t.Fatalf("fresh[%d] = %v, want %v (input order must be preserved)", i, tr, input[i])
		}
	}
	if err := eBatch.Close(ctx); err != nil {
		t.Fatal(err)
	}
	batchStats := eBatch.Stats()

	if stLoop.Len() != stBatch.Len() {
		t.Fatalf("closure size: loop %d, batch %d", stLoop.Len(), stBatch.Len())
	}
	stLoop.ForEach(func(tr rdf.Triple) bool {
		if !stBatch.Contains(tr) {
			t.Fatalf("batch closure missing %v", tr)
		}
		return true
	})
	if loopStats.Input != batchStats.Input || loopStats.Inferred != batchStats.Inferred {
		t.Fatalf("stats: loop {in=%d inf=%d}, batch {in=%d inf=%d}",
			loopStats.Input, loopStats.Inferred, batchStats.Input, batchStats.Inferred)
	}
	if batchStats.DuplicateInput != int64(len(input)) {
		t.Fatalf("DuplicateInput = %d, want %d", batchStats.DuplicateInput, len(input))
	}
}

// TestAddBatchConcurrentFeeders streams a partitioned input from many
// goroutines through AddBatch and checks quiescence and closure. Run
// with -race.
func TestAddBatchConcurrentFeeders(t *testing.T) {
	input := chain(120)
	st := store.New()
	e := New(st, rules.RhoDF(), Config{Workers: 4})
	const feeders = 6
	var wg sync.WaitGroup
	per := (len(input) + feeders - 1) / feeders
	for f := 0; f < feeders; f++ {
		lo := f * per
		hi := min(lo+per, len(input))
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(chunk []rdf.Triple) {
			defer wg.Done()
			e.AddBatch(chunk)
		}(input[lo:hi])
	}
	wg.Wait()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := e.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if err := e.Err(); err != nil {
		t.Fatal(err)
	}
	assertSameClosure(t, rules.RhoDF, st, input)
	if got := e.inflight.Load(); got != 0 {
		t.Fatalf("inflight = %d after Close, want 0 (batch accounting leak)", got)
	}
}

// TestAddBatchClosedEngine checks the batch path is a no-op after Close.
func TestAddBatchClosedEngine(t *testing.T) {
	st := store.New()
	e := New(st, rules.RhoDF(), Config{})
	if err := e.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	if fresh := e.AddBatch([]rdf.Triple{sc(a, b)}); fresh != nil {
		t.Fatalf("AddBatch on closed engine returned %v", fresh)
	}
	if st.Len() != 0 {
		t.Fatal("closed engine stored a triple")
	}
}

// TestWaitBackoffCompletes exercises Wait's exponential backoff across a
// slow trickle of adds: quiescence must still be detected promptly after
// the last add, and buffered work must still get force-flushed.
func TestWaitBackoffCompletes(t *testing.T) {
	st := store.New()
	// Big buffer + long timeout: only Wait's force-flush can drain it.
	e := New(st, rules.RhoDF(), Config{BufferSize: 1 << 20, Timeout: time.Hour})
	e.Add(sc(a, b))
	e.Add(sc(b, c))
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	start := time.Now()
	if err := e.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("Wait took %v despite force-flushing", elapsed)
	}
	if !st.Contains(sc(a, c)) {
		t.Fatal("missing inferred (a sc c) after Wait")
	}
	if err := e.Close(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestWaitContextCancelDuringBackoff checks a cancelled context unblocks
// Wait even while the backoff timer is at its widest.
func TestWaitContextCancelDuringBackoff(t *testing.T) {
	st := store.New()
	e := New(st, rules.RhoDF(), Config{})
	// Fake outstanding work so Wait spins in its backoff loop.
	e.inflight.Add(1)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := e.Wait(ctx); err != context.DeadlineExceeded {
		t.Fatalf("Wait = %v, want context.DeadlineExceeded", err)
	}
	e.inflight.Add(-1)
	if err := e.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
}
