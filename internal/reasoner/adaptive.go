package reasoner

// Adaptive buffer scheduling — the paper's second future-work item:
// "migrating from 'static' plans produced by traditional optimizers to
// run-time dynamic plans … learning from ontologies structures and
// previously executed runs".
//
// The policy is per rule module and deliberately simple: the engine
// watches each module's execution productivity (fresh triples per
// processed delta triple) and adjusts that module's buffer capacity at
// run time.
//
//   - A module whose instances keep producing nothing (several
//     consecutive zero-fresh executions) is paying scheduling overhead
//     for no knowledge; its buffer grows (up to MaxAdaptiveBuffer) so it
//     runs less often over larger batches.
//   - A module whose instances are productive shrinks back toward the
//     configured capacity, restoring reactivity while it matters.
//
// The policy never affects completeness — capacity only changes *when*
// a rule runs, never whether its buffered triples are processed — which
// TestAdaptiveClosureUnchanged verifies against the batch oracle.

// Adaptive-policy bounds.
const (
	// MaxAdaptiveBuffer caps how far an unproductive module's buffer can
	// grow.
	MaxAdaptiveBuffer = 8192
	// adaptiveZeroStreak is how many consecutive fruitless executions
	// trigger a capacity doubling.
	adaptiveZeroStreak = 3
)

// adapt implements the policy; called after every execution of m with the
// number of fresh triples that execution contributed.
func (e *Engine) adapt(m *module, fresh int) {
	if fresh == 0 {
		if m.zeroStreak.Add(1) >= adaptiveZeroStreak {
			m.zeroStreak.Store(0)
			cur := m.buf.capacity()
			if cur < MaxAdaptiveBuffer {
				next := cur * 2
				if next > MaxAdaptiveBuffer {
					next = MaxAdaptiveBuffer
				}
				m.c.capacityGrows.Add(1)
				if batch := m.buf.setCapacity(next); batch != nil {
					e.submit(m, batch)
				}
			}
		}
		return
	}
	m.zeroStreak.Store(0)
	cur := m.buf.capacity()
	if cur > e.cfg.BufferSize {
		next := cur / 2
		if next < e.cfg.BufferSize {
			next = e.cfg.BufferSize
		}
		m.c.capacityShrinks.Add(1)
		if batch := m.buf.setCapacity(next); batch != nil {
			e.submit(m, batch)
		}
	}
}
