package server

import (
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	slider "repro"
	"repro/internal/vfs"
)

// newFaultServer builds a durable reasoner whose disk is a FaultFS over
// a test tempdir, behind an httptest server. Every append fsyncs, so an
// armed fsync fault fires on the next write.
func newFaultServer(t *testing.T) (*httptest.Server, *slider.Reasoner, *vfs.FaultFS) {
	t.Helper()
	ffs := vfs.NewFault(vfs.OS)
	r, err := slider.Open(t.TempDir(), slider.RhoDF,
		slider.WithVFS(ffs),
		slider.WithFsync(),
		slider.WithViewMaxAge(-1),
		slider.WithLogger(slog.New(slog.DiscardHandler)))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(r, Config{}))
	t.Cleanup(func() {
		ts.Close()
		ffs.Clear()
		r.Close(context.Background())
	})
	return ts, r, ffs
}

func healthz(t *testing.T, url string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// TestDegradedReadOnlyOverHTTP is the acceptance scenario end to end at
// the HTTP layer: a disk fault mid-ingest flips the server read-only
// (writes 503 + Retry-After, reads and health keep serving), clearing
// the fault recovers to ok, and ingest resumes — all without a restart.
func TestDegradedReadOnlyOverHTTP(t *testing.T) {
	ts, _, ffs := newFaultServer(t)

	if resp, body := post(t, ts.URL+"/v1/insert", "application/n-triples",
		ntLine("a", "p", "b")); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy insert: status %d: %s", resp.StatusCode, body)
	}
	if code, body := healthz(t, ts.URL); code != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("healthy healthz: %d %v", code, body)
	}

	// Break the disk: every fsync fails from here.
	ffs.FailEveryFsync(nil)
	resp, body := post(t, ts.URL+"/v1/insert", "application/n-triples", ntLine("c", "p", "d"))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("degraded insert: want 503, got %d: %s", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Fatalf("degraded insert: want a positive Retry-After, got %q", ra)
	}
	if !strings.Contains(body, "degraded") {
		t.Fatalf("degraded insert: error should name the degradation, got %s", body)
	}

	// A subsequent insert hits the ReadOnly pre-check (no flight joined).
	if resp, _ := post(t, ts.URL+"/v1/insert", "application/n-triples",
		ntLine("e", "p", "f")); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("pre-checked insert: want 503, got %d", resp.StatusCode)
	}
	if resp, _ := post(t, ts.URL+"/v1/retract", "application/n-triples",
		ntLine("a", "p", "b")); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("degraded retract: want 503, got %d", resp.StatusCode)
	}

	code, hb := healthz(t, ts.URL)
	if code != http.StatusServiceUnavailable || hb["status"] != "degraded" {
		t.Fatalf("degraded healthz: %d %v", code, hb)
	}
	if hb["read_only"] != true {
		t.Fatalf("degraded healthz: want read_only true, got %v", hb)
	}
	if ra, ok := hb["retry_after_s"].(float64); !ok || ra < 1 {
		t.Fatalf("degraded healthz: want retry_after_s >= 1, got %v", hb["retry_after_s"])
	}
	if _, ok := hb["since"].(string); !ok {
		t.Fatalf("degraded healthz: want a since timestamp, got %v", hb)
	}

	// Reads keep serving the acknowledged state throughout.
	_, rows, trailer := queryRows(t, ts.URL, "SELECT ?o WHERE { <http://example.org/a> <p> ?o . }")
	if len(rows) != 1 || trailer["error"] != nil {
		t.Fatalf("degraded query: want the acknowledged row, got rows=%v trailer=%v", rows, trailer)
	}
	for _, route := range []string{"/stats", "/metrics"} {
		resp, err := http.Get(ts.URL + route)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("degraded GET %s: want 200, got %d", route, resp.StatusCode)
		}
	}

	// Fix the disk: the recovery loop's next probe succeeds and the
	// server accepts writes again, no restart involved.
	ffs.Clear()
	deadline := time.Now().Add(15 * time.Second)
	for {
		if code, hb := healthz(t, ts.URL); code == http.StatusOK && hb["status"] == "ok" {
			break
		}
		if time.Now().After(deadline) {
			code, hb := healthz(t, ts.URL)
			t.Fatalf("did not recover to ok: %d %v", code, hb)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if resp, body := post(t, ts.URL+"/v1/insert", "application/n-triples",
		ntLine("g", "p", "h")); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-recovery insert: status %d: %s", resp.StatusCode, body)
	}
	_, rows, _ = queryRows(t, ts.URL, "SELECT ?o WHERE { <http://example.org/g> <p> ?o . }")
	if len(rows) != 1 {
		t.Fatalf("post-recovery query: want the new row, got %v", rows)
	}
	if n := ffs.RefsyncViolations(); n != 0 {
		t.Fatalf("recovery re-fsynced a failed descriptor %d times", n)
	}
}
