package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	slider "repro"
	"repro/internal/trace"
)

// waitTrace polls until cond sees the trace state it wants — flight
// traces complete asynchronously (inference quiescence and view
// visibility settle on the lifecycle watcher's grain).
func waitTrace(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not reached before deadline")
}

// withZeroThresholdTracer swaps the default tracer for one that retains
// every completed trace, restoring the production tracer on cleanup.
func withZeroThresholdTracer(t *testing.T) {
	t.Helper()
	old := trace.Default
	trace.Default = trace.New()
	trace.Default.SetSlowThreshold(0)
	t.Cleanup(func() { trace.Default = old })
}

func TestExplainRecordFramedAfterRowsBeforeTrailer(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})

	var doc strings.Builder
	for i := 0; i < 50; i++ {
		doc.WriteString(ntLine(fmt.Sprintf("m%d", i), typeIRI(), "Cat"))
	}
	if resp, body := post(t, ts.URL+"/v1/insert", "text/plain", doc.String()); resp.StatusCode != http.StatusOK {
		t.Fatalf("insert: %d %s", resp.StatusCode, body)
	}

	resp, body := post(t, ts.URL+"/v1/query?explain=1", "application/sparql-query",
		"SELECT ?s WHERE { ?s a <"+exNS+"Cat> . }")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d: %s", resp.StatusCode, body)
	}
	lines := strings.Split(strings.TrimSpace(body), "\n")
	// Strict framing: head, 50 binding rows, explain, done trailer —
	// the explain record must be exactly second-to-last, and no binding
	// row may appear after it.
	if len(lines) != 53 {
		t.Fatalf("expected 53 NDJSON lines (head+50+explain+trailer), got %d:\n%s", len(lines), body)
	}
	for i, ln := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(ln), &m); err != nil {
			t.Fatalf("line %d is not valid JSON: %v (%q)", i, err, ln)
		}
		_, isExplain := m["explain"]
		if isExplain != (i == len(lines)-2) {
			t.Fatalf("explain record misplaced: found at line %d of %d", i, len(lines))
		}
	}
	var exRec struct {
		Explain struct {
			Order    []int `json:"order"`
			Rows     int64 `json:"rows"`
			Patterns []struct {
				Pattern    string  `json:"pattern"`
				EstRows    float64 `json:"est_rows"`
				ActualRows int64   `json:"actual_rows"`
			} `json:"patterns"`
		} `json:"explain"`
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-2]), &exRec); err != nil {
		t.Fatal(err)
	}
	if exRec.Explain.Rows != 50 || len(exRec.Explain.Patterns) != 1 {
		t.Fatalf("explain content: %+v", exRec.Explain)
	}
	if exRec.Explain.Patterns[0].ActualRows != 50 || exRec.Explain.Patterns[0].EstRows <= 0 {
		t.Fatalf("pattern profile: %+v", exRec.Explain.Patterns[0])
	}

	// Without the parameter the stream must not carry an explain line.
	_, body = post(t, ts.URL+"/v1/query", "application/sparql-query",
		"SELECT ?s WHERE { ?s a <"+exNS+"Cat> . }")
	if strings.Contains(body, `"explain"`) {
		t.Fatalf("explain leaked into a plain query stream:\n%s", body)
	}
}

func TestDebugTracesEndpoint(t *testing.T) {
	withZeroThresholdTracer(t)
	_, ts, _ := newTestServer(t, Config{})

	if resp, body := post(t, ts.URL+"/v1/insert", "text/plain",
		ntLine("felix", typeIRI(), "Cat")); resp.StatusCode != http.StatusOK {
		t.Fatalf("insert: %d %s", resp.StatusCode, body)
	}
	if _, _, trailer := queryRows(t, ts.URL, "SELECT ?s WHERE { ?s a <"+exNS+"Cat> . }"); trailer["done"] != true {
		t.Fatalf("query trailer %v", trailer)
	}

	// The flight root completes asynchronously (quiescence + view
	// visibility); wait for it before scraping the endpoint.
	waitTrace(t, func() bool {
		for _, tr := range trace.Default.Snapshot(false).Traces {
			if tr.Name == "ingest.flight" {
				return true
			}
		}
		return false
	})

	resp, err := http.Get(ts.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap struct {
		Enabled       bool  `json:"enabled"`
		RootsTotal    int64 `json:"roots_total"`
		RootsRetained int64 `json:"roots_retained"`
		Traces        []struct {
			Name  string `json:"name"`
			Spans int    `json:"spans"`
		} `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("decode /debug/traces: %v", err)
	}
	if !snap.Enabled || snap.RootsRetained == 0 || len(snap.Traces) == 0 {
		t.Fatalf("snapshot: %+v", snap)
	}
	names := map[string]bool{}
	for _, tr := range snap.Traces {
		names[tr.Name] = true
	}
	// Mixed traffic must have produced both a flight root and request
	// roots for the HTTP routes.
	for _, want := range []string{"ingest.flight", "http.insert", "http.query"} {
		if !names[want] {
			t.Fatalf("no %q root retained; got %v", want, names)
		}
	}
}

func TestTraceparentAdoptedAndEmitted(t *testing.T) {
	withZeroThresholdTracer(t)
	_, ts, _ := newTestServer(t, Config{})

	const parent = "00-0123456789abcdef0123456789abcdef-00f067aa0ba902b7-01"
	req, err := http.NewRequest("POST", ts.URL+"/v1/insert", strings.NewReader(ntLine("felix", typeIRI(), "Cat")))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("traceparent", parent)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	got := resp.Header.Get("Traceparent")
	if !strings.HasPrefix(got, "00-0123456789abcdef0123456789abcdef-") {
		t.Fatalf("response traceparent %q does not keep the caller's trace id", got)
	}
	if strings.Contains(got, "00f067aa0ba902b7") {
		t.Fatalf("response traceparent %q reused the caller's span id", got)
	}

	// The retained request root must carry the adopted trace id.
	waitTrace(t, func() bool {
		for _, tr := range trace.Default.Snapshot(false).Traces {
			if tr.TraceID == "0123456789abcdef0123456789abcdef" {
				return true
			}
		}
		return false
	})
}

// TestFlightTraceHasPipelineChildren drives a durable-less ingest and
// asserts the flight root carries the span tree the issue promises:
// store/routing children and the async lifecycle tails, all sharing
// the root's trace id.
func TestFlightTraceHasPipelineChildren(t *testing.T) {
	withZeroThresholdTracer(t)
	_, ts, _ := newTestServer(t, Config{})

	if resp, body := post(t, ts.URL+"/v1/insert", "text/plain",
		ntLine("Cat", slider.SubClassOf, "Animal")+ntLine("felix", typeIRI(), "Cat")); resp.StatusCode != http.StatusOK {
		t.Fatalf("insert: %d %s", resp.StatusCode, body)
	}
	// A query forces a view refresh, which settles view.visible.
	queryRows(t, ts.URL, "SELECT ?s WHERE { ?s a <"+exNS+"Animal> . }")

	var flight *trace.TraceJSON
	waitTrace(t, func() bool {
		snap := trace.Default.Snapshot(false)
		for i := range snap.Traces {
			if snap.Traces[i].Name == "ingest.flight" {
				flight = &snap.Traces[i]
				return true
			}
		}
		return false
	})
	var walk func(s trace.SpanJSON, seen map[string]bool)
	walk = func(s trace.SpanJSON, seen map[string]bool) {
		seen[s.Name] = true
		for _, c := range s.Children {
			walk(c, seen)
		}
	}
	seen := map[string]bool{}
	walk(flight.Root, seen)
	for _, want := range []string{"ingest.flight", "ingest.batch", "store.addbatch", "engine.route", "infer.rounds", "view.visible"} {
		if !seen[want] {
			t.Fatalf("flight trace lacks %q; spans seen: %v", want, seen)
		}
	}
}
