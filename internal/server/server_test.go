package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	slider "repro"
)

const exNS = "http://example.org/"

// ntLine renders one all-IRI N-Triples statement.
func ntLine(s, p, o string) string {
	return fmt.Sprintf("<%s%s> <%s> <%s%s> .\n", exNS, s, p, exNS, o)
}

func typeIRI() string { return slider.Type }

// newTestServer builds an in-memory retraction-enabled reasoner that
// refreshes its read snapshot on every change (so tests see their own
// writes immediately) behind an httptest server.
func newTestServer(t *testing.T, cfg Config, opts ...slider.Option) (*Server, *httptest.Server, *slider.Reasoner) {
	t.Helper()
	opts = append([]slider.Option{slider.WithRetraction(), slider.WithViewMaxAge(-1)}, opts...)
	r := slider.New(slider.RhoDF, opts...)
	s := New(r, cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		r.Close(context.Background())
	})
	return s, ts, r
}

func post(t *testing.T, url, contentType, body string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Post(url, contentType, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(b)
}

// queryRows posts a query and decodes the NDJSON response into the head,
// binding rows and trailer.
func queryRows(t *testing.T, url, q string) (head map[string]any, rows []map[string]string, trailer map[string]any) {
	t.Helper()
	resp, body := post(t, url+"/v1/query", "application/sparql-query", q)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d: %s", resp.StatusCode, body)
	}
	lines := strings.Split(strings.TrimSpace(body), "\n")
	if len(lines) < 2 {
		t.Fatalf("NDJSON response too short: %q", body)
	}
	if err := json.Unmarshal([]byte(lines[0]), &head); err != nil {
		t.Fatalf("head line: %v (%q)", err, lines[0])
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &trailer); err != nil {
		t.Fatalf("trailer line: %v (%q)", err, lines[len(lines)-1])
	}
	for _, ln := range lines[1 : len(lines)-1] {
		var row map[string]string
		if err := json.Unmarshal([]byte(ln), &row); err != nil {
			t.Fatalf("row line: %v (%q)", err, ln)
		}
		rows = append(rows, row)
	}
	return head, rows, trailer
}

func TestInsertQueryRetractEndToEnd(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})

	// Insert a schema and members; inference closes over subClassOf.
	doc := ntLine("Cat", slider.SubClassOf, "Animal") +
		ntLine("felix", typeIRI(), "Cat") +
		ntLine("tom", typeIRI(), "Cat")
	resp, body := post(t, ts.URL+"/v1/insert", "application/n-triples", doc)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("insert status %d: %s", resp.StatusCode, body)
	}
	var ins map[string]any
	if err := json.Unmarshal([]byte(body), &ins); err != nil {
		t.Fatal(err)
	}
	if ins["statements"].(float64) != 3 {
		t.Fatalf("insert ack %v, want 3 statements", ins)
	}

	// The closure is queryable: both cats are Animals.
	head, rows, trailer := queryRows(t, ts.URL,
		`SELECT ?x WHERE { ?x a <http://example.org/Animal> . }`)
	if vars := head["vars"].([]any); len(vars) != 1 || vars[0] != "x" {
		t.Fatalf("head vars = %v", head)
	}
	if len(rows) != 2 || trailer["rows"].(float64) != 2 || trailer["truncated"].(bool) {
		t.Fatalf("query got %d rows, trailer %v", len(rows), trailer)
	}

	// LIMIT is honoured server-side.
	_, rows, trailer = queryRows(t, ts.URL,
		`SELECT ?x WHERE { ?x a <http://example.org/Animal> . } LIMIT 1`)
	if len(rows) != 1 || trailer["rows"].(float64) != 1 {
		t.Fatalf("LIMIT 1 got %d rows", len(rows))
	}

	// Retract felix: DRed removes the derived Animal typing too.
	resp, body = post(t, ts.URL+"/v1/retract", "application/n-triples",
		ntLine("felix", typeIRI(), "Cat"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("retract status %d: %s", resp.StatusCode, body)
	}
	var ret map[string]any
	if err := json.Unmarshal([]byte(body), &ret); err != nil {
		t.Fatal(err)
	}
	if ret["retracted"].(float64) != 1 {
		t.Fatalf("retract ack %v", ret)
	}
	_, rows, _ = queryRows(t, ts.URL,
		`SELECT ?x WHERE { ?x a <http://example.org/Animal> . }`)
	if len(rows) != 1 || !strings.Contains(rows[0]["x"], "tom") {
		t.Fatalf("after retract: %v", rows)
	}
}

func TestInsertTurtle(t *testing.T) {
	_, ts, r := newTestServer(t, Config{})
	doc := `@prefix ex: <http://example.org/> .
ex:a a ex:T ; ex:knows ex:b .`
	resp, body := post(t, ts.URL+"/v1/insert", "text/turtle", doc)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("turtle insert status %d: %s", resp.StatusCode, body)
	}
	if err := r.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !r.Contains(slider.NewStatement(
		slider.IRI(exNS+"a"), slider.IRI(exNS+"knows"), slider.IRI(exNS+"b"))) {
		t.Fatal("turtle statement missing")
	}
}

func TestBadInputs(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	if resp, _ := post(t, ts.URL+"/v1/insert", "application/n-triples", "not ntriples"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad insert: status %d", resp.StatusCode)
	}
	if resp, _ := post(t, ts.URL+"/v1/query", "text/plain", "SELECT nonsense"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad query: status %d", resp.StatusCode)
	}
	if resp, _ := post(t, ts.URL+"/v1/query", "application/json", `{"query": }`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON query: status %d", resp.StatusCode)
	}
}

func TestRetractNotEnabled(t *testing.T) {
	r := slider.New(slider.RhoDF) // no retraction
	s := New(r, Config{})
	ts := httptest.NewServer(s)
	defer ts.Close()
	defer r.Close(context.Background())
	resp, _ := post(t, ts.URL+"/v1/retract", "application/n-triples",
		ntLine("x", typeIRI(), "T"))
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("retract without retraction: status %d, want 501", resp.StatusCode)
	}
}

func TestQueryMaxResultsTruncates(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{MaxResults: 5})
	var doc strings.Builder
	for i := 0; i < 20; i++ {
		doc.WriteString(ntLine(fmt.Sprintf("m%d", i), typeIRI(), "T"))
	}
	if resp, b := post(t, ts.URL+"/v1/insert", "", doc.String()); resp.StatusCode != 200 {
		t.Fatalf("insert: %d %s", resp.StatusCode, b)
	}
	_, rows, trailer := queryRows(t, ts.URL,
		`SELECT ?x WHERE { ?x a <http://example.org/T> . }`)
	if len(rows) != 5 || !trailer["truncated"].(bool) {
		t.Fatalf("MaxResults: %d rows, trailer %v", len(rows), trailer)
	}
}

func TestAdmissionControl(t *testing.T) {
	s, ts, _ := newTestServer(t, Config{MaxInflight: 1})
	// Occupy the only slot, then any /v1 request is rejected with 503.
	s.inflight <- struct{}{}
	resp, body := post(t, ts.URL+"/v1/insert", "", ntLine("a", typeIRI(), "T"))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overloaded insert: status %d (%s)", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	// healthz is not gated.
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("healthz while overloaded: %d", hr.StatusCode)
	}
	<-s.inflight
	if resp, _ := post(t, ts.URL+"/v1/insert", "", ntLine("a", typeIRI(), "T")); resp.StatusCode != http.StatusOK {
		t.Fatalf("after release: status %d", resp.StatusCode)
	}
}

func TestDrain(t *testing.T) {
	s, ts, _ := newTestServer(t, Config{})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	resp, body := post(t, ts.URL+"/v1/insert", "", ntLine("a", typeIRI(), "T"))
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(body, "draining") {
		t.Fatalf("post-drain insert: status %d body %s", resp.StatusCode, body)
	}
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	if hr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: %d", hr.StatusCode)
	}
}

func TestStats(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	post(t, ts.URL+"/v1/insert", "", ntLine("a", typeIRI(), "T"))
	queryRows(t, ts.URL, `SELECT ?x WHERE { ?x a <http://example.org/T> . }`)
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	srv := st["server"].(map[string]any)
	if srv["requests"].(float64) < 2 || srv["inserted_statements"].(float64) != 1 || srv["queries"].(float64) != 1 {
		t.Fatalf("stats: %v", srv)
	}
	if st["fragment"] != "rhodf" {
		t.Fatalf("fragment: %v", st["fragment"])
	}
}

// TestCoalescing pins the group-commit behaviour deterministically: with
// the flusher marked busy, two concurrent submissions join the same
// flight and are acknowledged by one AddBatch.
func TestCoalescing(t *testing.T) {
	r := slider.New(slider.RhoDF)
	defer r.Close(context.Background())
	c := newCoalescer(r, r.Metrics())
	c.mu.Lock()
	c.running = true // pretend a flush is in progress
	c.mu.Unlock()

	type res struct {
		merged int
		err    error
	}
	results := make(chan res, 2)
	submit := func(name string) {
		_, merged, _, err := c.submit([]slider.Statement{slider.NewStatement(
			slider.IRI(exNS+name), slider.IRI(typeIRI()), slider.IRI(exNS+"T"))})
		results <- res{merged, err}
	}
	go submit("a")
	go submit("b")
	// Wait until both riders joined the pending flight, then run the
	// flusher loop.
	deadline := time.Now().Add(5 * time.Second)
	for {
		c.mu.Lock()
		n := 0
		if c.next != nil {
			n = c.next.reqs
		}
		c.mu.Unlock()
		if n == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("riders never joined the flight")
		}
		time.Sleep(time.Millisecond)
	}
	go c.run()
	for i := 0; i < 2; i++ {
		r := <-results
		if r.err != nil || r.merged != 2 {
			t.Fatalf("rider %d: merged=%d err=%v", i, r.merged, r.err)
		}
	}
	if c.flushes.Load() != 1 || c.coalesced.Load() != 2 {
		t.Fatalf("flushes=%d coalesced=%d, want 1/2", c.flushes.Load(), c.coalesced.Load())
	}
}
