package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	slider "repro"
	"repro/internal/store"
)

// Prometheus text-format (version 0.0.4) line grammar. Label values in
// our metrics never contain escapes, but the pattern admits the legal
// ones so a future escaped value does not fail the scrape test.
var (
	helpRe   = regexp.MustCompile(`^# HELP ([a-zA-Z_:][a-zA-Z0-9_:]*) \S.*$`)
	typeRe   = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram)$`)
	sampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)` +
		`(?:\{([a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\\n]|\\\\|\\"|\\n)*"` +
		`(?:,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\\n]|\\\\|\\"|\\n)*")*)\})? (\S+)$`)
)

// scrape GETs /metrics and strictly parses every line: each must be a
// valid HELP, TYPE or sample line; HELP/TYPE appear exactly once per
// family with HELP first; every sample belongs to the family declared
// directly above it (with the _bucket/_sum/_count series admitted for
// histograms); every value parses as a Prometheus float and is not NaN.
// Returns samples keyed by `name{labels}` plus each family's type.
func scrape(t *testing.T, url string) (samples map[string]float64, types map[string]string) {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("/metrics content-type %q, want the 0.0.4 text format", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	samples = make(map[string]float64)
	types = make(map[string]string)
	helped := make(map[string]bool)
	family := ""
	for i, line := range strings.Split(string(raw), "\n") {
		if line == "" {
			continue // trailing newline only; exposition has no blank lines
		}
		if m := helpRe.FindStringSubmatch(line); m != nil {
			if helped[m[1]] {
				t.Fatalf("line %d: duplicate HELP for %s", i+1, m[1])
			}
			helped[m[1]] = true
			family = m[1]
			continue
		}
		if m := typeRe.FindStringSubmatch(line); m != nil {
			if m[1] != family {
				t.Fatalf("line %d: TYPE %s without preceding HELP", i+1, m[1])
			}
			if _, dup := types[m[1]]; dup {
				t.Fatalf("line %d: duplicate TYPE for %s", i+1, m[1])
			}
			types[m[1]] = m[2]
			continue
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("line %d: not a valid exposition line: %q", i+1, line)
		}
		name, labels, valStr := m[1], m[2], m[3]
		base := name
		if types[family] == "histogram" {
			base = strings.TrimSuffix(base, "_bucket")
			base = strings.TrimSuffix(base, "_sum")
			base = strings.TrimSuffix(base, "_count")
		}
		if base != family {
			t.Fatalf("line %d: sample %s outside its family %s", i+1, name, family)
		}
		v, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("line %d: bad sample value %q: %v", i+1, valStr, err)
		}
		if math.IsNaN(v) {
			t.Fatalf("line %d: NaN sample %s", i+1, name)
		}
		key := name
		if labels != "" {
			key += "{" + labels + "}"
		}
		if _, dup := samples[key]; dup {
			t.Fatalf("line %d: duplicate sample %s", i+1, key)
		}
		samples[key] = v
	}
	return samples, types
}

// TestMetricsScrape drives insert/query/retract through a durable
// reasoner and validates the full /metrics exposition: strict
// line-by-line format, presence of every instrumented family across the
// ingest→infer→serve pipeline, nonzero activity counts, and counter
// monotonicity across scrapes.
func TestMetricsScrape(t *testing.T) {
	r, err := slider.Open(t.TempDir(), slider.RhoDF,
		slider.WithRetraction(), slider.WithViewMaxAge(-1))
	if err != nil {
		t.Fatal(err)
	}
	s := New(r, Config{})
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		r.Close(context.Background())
	})

	doc := ntLine("Cat", slider.SubClassOf, "Animal") +
		ntLine("felix", typeIRI(), "Cat") +
		ntLine("tom", typeIRI(), "Cat")
	if resp, body := post(t, ts.URL+"/v1/insert", "application/n-triples", doc); resp.StatusCode != http.StatusOK {
		t.Fatalf("insert status %d: %s", resp.StatusCode, body)
	}
	if _, rows, _ := queryRows(t, ts.URL,
		`SELECT ?x WHERE { ?x a <http://example.org/Animal> . }`); len(rows) != 2 {
		t.Fatalf("query saw %d rows, want 2", len(rows))
	}
	if resp, body := post(t, ts.URL+"/v1/retract", "application/n-triples",
		ntLine("felix", typeIRI(), "Cat")); resp.StatusCode != http.StatusOK {
		t.Fatalf("retract status %d: %s", resp.StatusCode, body)
	}

	first, types := scrape(t, ts.URL)

	// Every instrumented subsystem exposes its family, with the right type.
	wantFamilies := map[string]string{
		"slider_ingest_seconds":         "histogram",
		"slider_ingest_batch_triples":   "histogram",
		"slider_ingest_triples_total":   "counter",
		"slider_engine_inferred_total":  "counter",
		"slider_wal_append_seconds":     "histogram",
		"slider_wal_fsync_seconds":      "histogram",
		"slider_wal_appends_total":      "counter",
		"slider_wal_live_bytes":         "gauge",
		"slider_checkpoint_seconds":     "histogram",
		"slider_view_refresh_seconds":   "histogram",
		"slider_view_staleness_seconds": "gauge",
		"slider_retract_seconds":        "histogram",
		"slider_retractions_total":      "counter",
		"slider_compaction_seconds":     "histogram",
		"slider_compaction_backlog":     "gauge",
		"slider_query_plan_seconds":     "histogram",
		"slider_query_plan_cost":        "histogram",
		"slider_query_exec_seconds":     "histogram",
		"slider_query_total":            "counter",
		"slider_http_request_seconds":   "histogram",
		"slider_http_responses_total":   "counter",
		"slider_server_requests_total":  "counter",
		"slider_server_inflight":        "gauge",
		"slider_store_triples":          "gauge",
	}
	for fam, typ := range wantFamilies {
		if got, ok := types[fam]; !ok {
			t.Errorf("family %s missing from /metrics", fam)
		} else if got != typ {
			t.Errorf("family %s has type %s, want %s", fam, got, typ)
		}
	}

	// The workload actually moved the needles.
	for key, min := range map[string]float64{
		"slider_ingest_seconds_count":                         1,
		"slider_ingest_triples_total":                         3,
		"slider_engine_inferred_total":                        1, // Cat⊂Animal types both cats
		"slider_wal_appends_total":                            1,
		"slider_retract_seconds_count{phase=\"apply\"}":       1,
		"slider_retractions_total":                            1,
		"slider_query_total":                                  1,
		"slider_query_exec_seconds_count":                     1,
		"slider_http_request_seconds_count{route=\"insert\"}": 1,
		"slider_http_request_seconds_count{route=\"query\"}":  1,
		"slider_server_inserted_statements_total":             3,
	} {
		if first[key] < min {
			t.Errorf("%s = %v, want >= %v", key, first[key], min)
		}
	}

	// Counters (and histogram series — cumulative by construction) only
	// ever go up: drive more traffic, rescrape, compare every sample.
	if resp, body := post(t, ts.URL+"/v1/insert", "application/n-triples",
		ntLine("rex", typeIRI(), "Animal")); resp.StatusCode != http.StatusOK {
		t.Fatalf("second insert status %d: %s", resp.StatusCode, body)
	}
	if _, rows, _ := queryRows(t, ts.URL,
		`SELECT ?x WHERE { ?x a <http://example.org/Animal> . }`); len(rows) != 2 {
		t.Fatalf("second query saw %d rows, want 2", len(rows))
	}
	second, _ := scrape(t, ts.URL)
	monotone := 0
	for key, was := range first {
		fam := key
		if i := strings.IndexByte(fam, '{'); i >= 0 {
			fam = fam[:i]
		}
		switch {
		case types[fam] == "counter":
		case types[fam] == "" && (strings.HasSuffix(fam, "_bucket") ||
			strings.HasSuffix(fam, "_sum") || strings.HasSuffix(fam, "_count")):
			// histogram series: keyed under the suffixed name
		default:
			continue // gauges may move either way
		}
		now, ok := second[key]
		if !ok {
			t.Errorf("sample %s disappeared between scrapes", key)
			continue
		}
		if now < was {
			t.Errorf("counter %s went backwards: %v -> %v", key, was, now)
		}
		monotone++
	}
	if monotone < 50 {
		t.Fatalf("only %d monotone samples compared; scrape looks incomplete", monotone)
	}
}

// TestHealthzDegradedOnCompactionPanic: a background-compaction panic
// must flip /healthz to 503 "degraded" (serving still works) while the
// healthy response carries the staleness_ms field.
func TestHealthzDegradedOnCompactionPanic(t *testing.T) {
	store.SetCompactTestHook(func() { panic("injected compaction failure") })
	defer store.SetCompactTestHook(nil)
	_, ts, r := newTestServer(t, Config{})

	status, health := getHealth(t, ts.URL)
	if status != http.StatusOK || health["status"] != "ok" {
		t.Fatalf("fresh healthz = %d %v", status, health)
	}
	if _, ok := health["staleness_ms"]; !ok {
		t.Fatalf("healthy response missing staleness_ms: %v", health)
	}

	// Enough pairs on one predicate to cross the compactor's overlay
	// threshold and spawn the (hooked, panicking) worker.
	var doc strings.Builder
	for i := 0; i < 9000; i++ {
		fmt.Fprintf(&doc, "<%sm%d> <%s> <%sThing> .\n", exNS, i, typeIRI(), exNS)
	}
	if resp, body := post(t, ts.URL+"/v1/insert", "application/n-triples", doc.String()); resp.StatusCode != http.StatusOK {
		t.Fatalf("insert status %d: %s", resp.StatusCode, body)
	}
	if err := r.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		status, health = getHealth(t, ts.URL)
		if status == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("healthz never degraded; last: %d %v", status, health)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if health["status"] != "degraded" {
		t.Fatalf("healthz status %q, want degraded: %v", health["status"], health)
	}
	if msg, _ := health["error"].(string); !strings.Contains(msg, "injected compaction failure") {
		t.Fatalf("degraded error %q does not carry the panic value", health["error"])
	}
	if _, ok := health["staleness_ms"]; !ok {
		t.Fatalf("degraded response missing staleness_ms: %v", health)
	}

	// Degraded, not down: reads and writes still succeed.
	if resp, body := post(t, ts.URL+"/v1/insert", "application/n-triples",
		ntLine("late", typeIRI(), "Thing")); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-degrade insert status %d: %s", resp.StatusCode, body)
	}
	if _, rows, _ := queryRows(t, ts.URL,
		`SELECT ?x WHERE { ?x a <http://example.org/Thing> . } LIMIT 5`); len(rows) == 0 {
		t.Fatal("post-degrade query returned no rows")
	}
}

func getHealth(t *testing.T, url string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, m
}
