// Package server is Slider's production HTTP serving subsystem: batch
// ingest with write coalescing, snapshot-isolated streamed queries, and
// incremental retraction over a single shared Reasoner.
//
//	POST /v1/insert   N-Triples (or Turtle) body → merged AddBatch
//	POST /v1/query    SPARQL-like SELECT → streamed NDJSON bindings
//	POST /v1/retract  N-Triples body → delete-and-rederive
//	GET  /healthz     liveness + sticky-failure surface
//	GET  /stats       engine, store and serving counters (JSON)
//	GET  /metrics     the same registry in Prometheus text format
//	GET  /debug/traces retained slow/error flight traces (JSON)
//
// Queries execute against a read session (Reasoner.View): every answer
// is computed over one consistent snapshot — the closure of an
// acknowledged prefix of the writes — and a long scan never blocks
// writers. Inserts are coalesced: concurrent requests merge into shared
// AddBatch calls (one WAL append, one routing pass per flush). Admission
// control bounds in-flight requests, answering 503 when the server is
// overloaded or draining; Drain stops admission and waits for the tail.
//
// Every request is timed into the reasoner's metrics registry
// (slider_http_request_seconds{route=...}) and logged through the
// configured slog.Logger with method, route, status, duration and — for
// coalesced inserts — the flight it rode on. Each request is also a
// trace span (internal/trace): an incoming W3C traceparent header is
// adopted as the trace id, the response carries the request's own
// traceparent, and slow or failed requests land in the flight recorder
// at /debug/traces. POST /v1/query additionally accepts ?explain=1,
// which appends an explain record (join order, per-pattern estimated
// vs actual rows, stage timings) to the NDJSON stream after the
// binding rows and before the done trailer.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	slider "repro"
	"repro/internal/ntriples"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/trace"
	"repro/internal/turtle"
)

// Config tunes the server. Zero values take the defaults.
type Config struct {
	// MaxInflight bounds concurrently admitted /v1/* requests; further
	// requests get 503 + Retry-After. Default 64.
	MaxInflight int
	// MaxBodyBytes caps a request body. Default 8 MiB.
	MaxBodyBytes int64
	// MaxResults caps the rows one query may stream, independent of its
	// LIMIT clause; hitting it sets "truncated" on the result trailer.
	// Default 10000.
	MaxResults int
	// QueryTimeout bounds a single query's wall clock, snapshot
	// acquisition included. Default 30s.
	QueryTimeout time.Duration
	// QueryConcurrency bounds how many queries execute simultaneously;
	// admitted queries beyond it queue (they do not 503). This is the
	// ingest-protection knob: snapshot isolation keeps queries off the
	// writers' locks, but on a saturated box they still compete for CPU
	// — capping concurrent execution caps that share. Default
	// max(1, GOMAXPROCS/2); negative = unlimited.
	QueryConcurrency int
	// RetractTimeout bounds one retraction's delete-and-rederive pass
	// (default 5m). The pass's analysis phases run concurrently with
	// ingest and are safely cancellable — a timeout (or client
	// disconnect, which the server-scoped context ignores) mid-pass
	// leaves the knowledge base untouched and healthy; only the short
	// final apply window is uninterruptible.
	RetractTimeout time.Duration
	// Logger receives one structured line per request (method, route,
	// status, duration, and the coalesced flight id for inserts).
	// Default: discard.
	Logger *slog.Logger
}

func (c *Config) withDefaults() {
	if c.MaxInflight <= 0 {
		c.MaxInflight = 64
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.MaxResults <= 0 {
		c.MaxResults = 10000
	}
	if c.QueryTimeout <= 0 {
		c.QueryTimeout = 30 * time.Second
	}
	if c.QueryConcurrency == 0 {
		c.QueryConcurrency = runtime.GOMAXPROCS(0) / 2
		if c.QueryConcurrency < 1 {
			c.QueryConcurrency = 1
		}
	} else if c.QueryConcurrency < 0 {
		c.QueryConcurrency = c.MaxInflight
	}
	if c.RetractTimeout <= 0 {
		c.RetractTimeout = 5 * time.Minute
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.DiscardHandler)
	}
}

// Server serves one Reasoner over HTTP. Create with New, mount as an
// http.Handler, and call Drain before closing the reasoner.
type Server struct {
	r    *slider.Reasoner
	cfg  Config
	mux  *http.ServeMux
	coal *coalescer
	reg  *obs.Registry

	inflight chan struct{}
	querySem chan struct{}
	draining atomic.Bool
	wg       sync.WaitGroup

	// Serving counters live in the reasoner's registry; /stats reads
	// them back with Load, so the JSON and Prometheus surfaces can
	// never disagree.
	nRequests  *obs.Counter
	nRejected  *obs.Counter
	nInserted  *obs.Counter
	nQueries   *obs.Counter
	nRows      *obs.Counter
	nRetracted *obs.Counter
}

// New builds a Server around the reasoner. Serving metrics register in
// the reasoner's registry (Reasoner.Metrics): a second Server over the
// same reasoner shares them.
func New(r *slider.Reasoner, cfg Config) *Server {
	cfg.withDefaults()
	reg := r.Metrics()
	s := &Server{
		r:        r,
		cfg:      cfg,
		coal:     newCoalescer(r, reg),
		reg:      reg,
		inflight: make(chan struct{}, cfg.MaxInflight),
		querySem: make(chan struct{}, cfg.QueryConcurrency),
		nRequests: reg.Counter("slider_server_requests_total",
			"HTTP requests reaching the /v1 admission gate."),
		nRejected: reg.Counter("slider_server_rejected_total",
			"Requests rejected by admission control (overloaded or draining)."),
		nInserted: reg.Counter("slider_server_inserted_statements_total",
			"Statements accepted by POST /v1/insert."),
		nQueries: reg.Counter("slider_server_queries_total",
			"Parsed queries admitted to execution."),
		nRows: reg.Counter("slider_server_query_rows_total",
			"Binding rows streamed to query clients."),
		nRetracted: reg.Counter("slider_server_retracted_statements_total",
			"Statements removed by POST /v1/retract."),
	}
	reg.GaugeFunc("slider_server_inflight",
		"Admitted /v1 requests currently in flight.",
		func() float64 { return float64(len(s.inflight)) })
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/insert", s.instrument("insert", s.admit(s.handleInsert)))
	mux.HandleFunc("POST /v1/query", s.instrument("query", s.admit(s.handleQuery)))
	mux.HandleFunc("POST /v1/retract", s.instrument("retract", s.admit(s.handleRetract)))
	mux.HandleFunc("GET /healthz", s.instrument("healthz", s.handleHealthz))
	mux.HandleFunc("GET /stats", s.instrument("stats", s.handleStats))
	mux.HandleFunc("GET /metrics", s.instrument("metrics", s.handleMetrics))
	mux.HandleFunc("GET /debug/traces", s.instrument("traces", s.handleTraces))
	s.mux = mux
	return s
}

// reqScope is per-request context handlers annotate for the access log
// — currently just the coalesced-flight id an insert rode on.
type reqScope struct {
	flightID uint64
}

type scopeKey struct{}

func scopeOf(r *http.Request) *reqScope {
	sc, _ := r.Context().Value(scopeKey{}).(*reqScope)
	return sc
}

// statusRecorder captures the response status for metrics and logging.
// It forwards Flush so the query path's NDJSON streaming keeps working
// through the wrapper.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (sr *statusRecorder) WriteHeader(code int) {
	sr.status = code
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Flush() {
	if f, ok := sr.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps a route with the request timer
// (slider_http_request_seconds{route}), the per-status response counter
// (slider_http_responses_total{route,code}) and the structured access
// log.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	hist := s.reg.Histogram("slider_http_request_seconds",
		"HTTP request latency by route.", nil, "route", route)
	const respName = "slider_http_responses_total"
	const respHelp = "HTTP responses by route and status code."
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sc := &reqScope{}
		ctx := context.WithValue(r.Context(), scopeKey{}, sc)
		// Every request is a trace root. An incoming W3C traceparent is
		// adopted (the request joins the caller's trace id); the response
		// always carries this request's own traceparent so clients can
		// fish the flight recorder for it.
		ctx, sp := trace.StartRequest(ctx, "http."+route, r.Header.Get("traceparent"))
		r = r.WithContext(ctx)
		sr := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		if tp := sp.Traceparent(); tp != "" {
			sr.Header().Set("Traceparent", tp)
		}
		h(sr, r)
		sp.SetInt("status", int64(sr.status))
		if sc.flightID != 0 {
			// The coalesced flight is a separate trace root (it merges
			// requests); the shared id is the join key between the two.
			sp.SetInt("flight", int64(sc.flightID))
		}
		if sr.status >= 500 {
			sp.Error(http.StatusText(sr.status))
		}
		sp.End()
		dur := time.Since(start)
		hist.ObserveDuration(dur)
		s.reg.Counter(respName, respHelp,
			"route", route, "code", strconv.Itoa(sr.status)).Inc()
		attrs := []any{
			"method", r.Method,
			"route", route,
			"status", sr.status,
			"dur_ms", float64(dur.Microseconds()) / 1000,
		}
		if sc.flightID != 0 {
			attrs = append(attrs, "flight", sc.flightID)
		}
		s.cfg.Logger.Info("request", attrs...)
	}
}

// handleTraces renders the flight recorder: the retained slow/error
// trace trees, the per-tracer counters and knob settings, and — with
// ?recent=1 — the most recent completed spans regardless of retention.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = trace.Default.WriteJSON(w, r.URL.Query().Get("recent") == "1")
}

// handleMetrics renders the reasoner's registry — engine, store, WAL,
// checkpoint, view, retraction, query and serving instruments — in
// Prometheus text exposition format.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.reg.WriteText(w)
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Drain stops admitting /v1/* requests (503 "draining") and waits,
// bounded by ctx, for the admitted tail to finish — the graceful half of
// shutdown. The caller then closes the reasoner.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// admit is the admission-control middleware: it bounds in-flight
// requests, rejects early while draining, and tracks the tail for Drain.
func (s *Server) admit(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.nRequests.Add(1)
		select {
		case s.inflight <- struct{}{}:
		default:
			s.nRejected.Add(1)
			w.Header().Set("Retry-After", "1")
			httpError(w, http.StatusServiceUnavailable, "overloaded: %d requests in flight", s.cfg.MaxInflight)
			return
		}
		s.wg.Add(1)
		defer func() {
			s.wg.Done()
			<-s.inflight
		}()
		// Checked after wg.Add so Drain's Wait covers every request that
		// slipped past the flag.
		if s.draining.Load() {
			s.nRejected.Add(1)
			httpError(w, http.StatusServiceUnavailable, "draining")
			return
		}
		h(w, r)
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// readStatements parses the request body as N-Triples (default) or
// Turtle (Content-Type text/turtle, or ?format=ttl).
func (s *Server) readStatements(r *http.Request) ([]slider.Statement, error) {
	body := http.MaxBytesReader(nil, r.Body, s.cfg.MaxBodyBytes)
	defer body.Close()
	ct := r.Header.Get("Content-Type")
	useTurtle := strings.HasPrefix(ct, "text/turtle") || r.URL.Query().Get("format") == "ttl"
	var read func() (slider.Statement, error)
	if useTurtle {
		read = turtle.NewReader(body).Read
	} else {
		read = ntriples.NewReader(body).Read
	}
	var out []slider.Statement
	for {
		st, err := read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, st)
	}
}

func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) {
	psp := trace.FromContext(r.Context()).Child("insert.parse")
	sts, err := s.readStatements(r)
	if err != nil {
		psp.Error(err.Error())
		psp.End()
		httpError(w, http.StatusBadRequest, "parse: %v", err)
		return
	}
	psp.SetInt("statements", int64(len(sts)))
	psp.End()
	if len(sts) == 0 {
		writeJSON(w, http.StatusOK, map[string]any{"statements": 0, "merged_requests": 0})
		return
	}
	// Validate here so one request's bad data cannot fail the merged
	// flight it rides on.
	for _, st := range sts {
		if !st.Valid() {
			httpError(w, http.StatusBadRequest, "invalid statement %v", st)
			return
		}
	}
	// Refuse before joining a flight: while the reasoner is read-only
	// every flight would fail anyway, and the pre-check answers with the
	// live backoff instead of making the client discover it the hard way.
	if h := s.r.Health(); h.ReadOnly {
		s.refuseReadOnly(w, h)
		return
	}
	_, merged, flightID, err := s.coal.submit(sts)
	if sc := scopeOf(r); sc != nil {
		sc.flightID = flightID
	}
	if err != nil {
		if errors.Is(err, slider.ErrDegraded) {
			s.refuseReadOnly(w, s.r.Health())
			return
		}
		httpError(w, http.StatusInternalServerError, "ingest: %v", err)
		return
	}
	s.nInserted.Add(int64(len(sts)))
	writeJSON(w, http.StatusOK, map[string]any{
		"statements":      len(sts),
		"merged_requests": merged,
	})
}

// queryRequest is the optional JSON form of a query body; a plain-text
// body is taken as the query itself.
type queryRequest struct {
	Query string `json:"query"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(nil, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		httpError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	text := string(body)
	if strings.HasPrefix(r.Header.Get("Content-Type"), "application/json") {
		var qr queryRequest
		if err := json.Unmarshal(body, &qr); err != nil {
			httpError(w, http.StatusBadRequest, "bad JSON body: %v", err)
			return
		}
		text = qr.Query
	}
	psp := trace.FromContext(r.Context()).Child("query.parse")
	q, err := query.ParseSelect(text)
	if err != nil {
		psp.Error(err.Error())
		psp.End()
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	psp.End()
	s.nQueries.Add(1)
	var ex *query.Explain
	if r.URL.Query().Get("explain") == "1" {
		ex = &query.Explain{}
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.QueryTimeout)
	defer cancel()
	// Execution gate: queries beyond QueryConcurrency queue here instead
	// of competing with ingest for CPU.
	select {
	case s.querySem <- struct{}{}:
		defer func() { <-s.querySem }()
	case <-ctx.Done():
		httpError(w, http.StatusServiceUnavailable, "query queue: %v", ctx.Err())
		return
	}
	view, err := s.r.View(ctx)
	if err != nil {
		httpError(w, http.StatusServiceUnavailable, "snapshot: %v", err)
		return
	}
	defer view.Close()

	vars := q.Select
	if len(vars) == 0 {
		vars = q.Vars()
	}
	// Streamed NDJSON: a head line with the variables, one line per
	// binding as it is found, and a trailer with counts — rows flow to
	// the client while the join is still running.
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	_ = enc.Encode(map[string]any{"vars": vars, "snapshot_triples": view.Len()})
	rows, truncated := 0, false
	err = view.SelectQueryFuncExplain(ctx, q, ex, func(b slider.Binding) bool {
		if ctx.Err() != nil {
			return false
		}
		row := make(map[string]string, len(b))
		for v, term := range b {
			row[v] = term.String()
		}
		if enc.Encode(row) != nil {
			return false // client went away
		}
		rows++
		if flusher != nil && rows%64 == 0 {
			flusher.Flush()
		}
		if rows >= s.cfg.MaxResults {
			truncated = true
			return false
		}
		return true
	})
	s.nRows.Add(int64(rows))
	if ex != nil {
		// The explain record is emitted only here, after the executor
		// returned — it can never interleave with binding rows, and the
		// done trailer stays the stream's last line.
		_ = enc.Encode(map[string]any{"explain": ex})
	}
	trailer := map[string]any{"done": true, "rows": rows, "truncated": truncated}
	if err != nil {
		trailer["error"] = err.Error()
	} else if cerr := ctx.Err(); cerr != nil {
		trailer["error"] = cerr.Error()
	}
	_ = enc.Encode(trailer)
	if flusher != nil {
		flusher.Flush()
	}
}

func (s *Server) handleRetract(w http.ResponseWriter, r *http.Request) {
	sts, err := s.readStatements(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "parse: %v", err)
		return
	}
	// Detached from the request: a retraction acknowledged to one client
	// must not be abortable by that client's disconnect. Cancellation is
	// otherwise harmless — the pass's analysis phases are read-only and
	// leave the reasoner healthy — so the server-scoped RetractTimeout
	// is simply the work bound.
	if h := s.r.Health(); h.ReadOnly {
		s.refuseReadOnly(w, h)
		return
	}
	ctx, cancel := context.WithTimeout(context.WithoutCancel(r.Context()), s.cfg.RetractTimeout)
	defer cancel()
	stats, err := s.r.Retract(ctx, sts...)
	if err != nil {
		if errors.Is(err, slider.ErrDegraded) {
			s.refuseReadOnly(w, s.r.Health())
			return
		}
		code := http.StatusInternalServerError
		if strings.Contains(err.Error(), "retraction not enabled") {
			code = http.StatusNotImplemented
		}
		httpError(w, code, "retract: %v", err)
		return
	}
	s.nRetracted.Add(int64(stats.Retracted))
	writeJSON(w, http.StatusOK, retractJSON(stats))
}

// retractJSON renders one DRed pass's statistics — the shared encoder
// behind the /v1/retract response and the /stats retraction block.
func retractJSON(rs slider.RetractStats) map[string]any {
	return map[string]any{
		"retracted":    rs.Retracted,
		"suspects":     rs.Suspects,
		"overdeleted":  rs.Overdeleted,
		"rederived":    rs.Rederived,
		"rounds":       rs.Rounds,
		"validated":    rs.Validated,
		"prepare_us":   rs.PrepareMicros,
		"exclusive_us": rs.ExclusiveMicros,
		"two_phase":    rs.TwoPhase,
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	staleness := s.r.ViewStaleness().Milliseconds()
	h := s.r.Health()
	if h.Status == slider.HealthOK && s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status": "draining", "staleness_ms": staleness,
		})
		return
	}
	body := map[string]any{
		"status":       string(h.Status),
		"triples":      s.r.Len(),
		"staleness_ms": staleness,
	}
	if h.Cause != "" {
		body["error"] = h.Cause
	}
	if !h.Since.IsZero() {
		// Since lets an operator distinguish a fresh blip from a
		// long-stuck degradation at a glance.
		body["since"] = h.Since.UTC().Format(time.RFC3339)
	}
	if h.ReadOnly {
		body["read_only"] = true
	}
	if h.RetryAfter > 0 {
		body["retry_after_s"] = retryAfterSeconds(h.RetryAfter)
	}
	code := http.StatusOK
	if h.Status != slider.HealthOK {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, body)
}

// retryAfterSeconds renders a backoff as whole Retry-After seconds,
// rounding up and never below 1 — "Retry-After: 0" invites an
// immediate stampede.
func retryAfterSeconds(d time.Duration) int64 {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// refuseReadOnly answers a mutation with 503 + Retry-After while the
// knowledge base is read-only (degraded or failed). The Retry-After is
// the recovery loop's current backoff — the soonest a retry could
// plausibly succeed.
func (s *Server) refuseReadOnly(w http.ResponseWriter, h slider.Health) {
	w.Header().Set("Retry-After", strconv.FormatInt(retryAfterSeconds(h.RetryAfter), 10))
	cause := h.Cause
	if cause == "" {
		cause = "knowledge base is read-only"
	}
	httpError(w, http.StatusServiceUnavailable, "%s", cause)
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	es := s.r.Stats()
	ss := s.r.Store().Stats()
	bi := slider.BuildInfo()
	out := map[string]any{
		"triples":  s.r.Len(),
		"fragment": s.r.Fragment().Name(),
		"build": map[string]any{
			"version":    bi.Version,
			"go_version": bi.GoVersion,
			"revision":   bi.Revision,
		},
		"engine": map[string]any{"inferred": es.Inferred, "duplicates": es.Duplicates},
		"store": map[string]any{
			"predicates":    ss.Predicates,
			"max_partition": ss.MaxPartition,
			"runs":          ss.Runs,
			"run_pairs":     ss.RunPairs,
			"overlay_pairs": ss.OverlayPairs,
			"tombstones":    ss.Tombstones,
			"compaction": map[string]any{
				"flushes":      ss.Compaction.Flushes,
				"merges":       ss.Compaction.Merges,
				"purges":       ss.Compaction.Purges,
				"pairs_merged": ss.Compaction.PairsMerged,
			},
		},
		"dictionary": s.r.Dictionary().Len(),
		"server": map[string]any{
			"requests":             s.nRequests.Load(),
			"rejected":             s.nRejected.Load(),
			"inserted_statements":  s.nInserted.Load(),
			"insert_flushes":       s.coal.flushes.Load(),
			"coalesced_requests":   s.coal.coalesced.Load(),
			"queries":              s.nQueries.Load(),
			"query_rows":           s.nRows.Load(),
			"retracted_statements": s.nRetracted.Load(),
			"inflight":             len(s.inflight),
			"max_inflight":         s.cfg.MaxInflight,
			"query_concurrency":    s.cfg.QueryConcurrency,
			"draining":             s.draining.Load(),
		},
	}
	// Last completed DRed pass, when one has run: how suspect-local the
	// analysis was and how long writers were actually excluded.
	if rs, ok := s.r.LastRetract(); ok {
		out["retraction"] = retractJSON(rs)
	}
	writeJSON(w, http.StatusOK, out)
}
