package server

import (
	"context"
	"sync"

	slider "repro"
	"repro/internal/obs"
	"repro/internal/trace"
)

// coalescer merges concurrent insert requests into shared AddBatch
// calls: while one flush is running against the reasoner, every arriving
// request joins the next flight, so N concurrent clients cost one WAL
// append and one engine routing pass per flush instead of N. This is the
// serving layer's group commit.
type coalescer struct {
	r *slider.Reasoner

	mu      sync.Mutex
	next    *flight // accumulating flight; nil when none pending
	running bool    // a flusher goroutine is draining flights
	seq     uint64  // last flight id handed out; guarded by mu

	// flushes counts AddBatch calls issued; coalesced counts requests
	// that shared their flush with at least one other.
	flushes   *obs.Counter
	coalesced *obs.Counter
}

// flight is one pending merged batch and the requests riding on it. The
// id names the flight in access logs, so coalesced requests are
// correlatable: every rider of one AddBatch logs the same id.
type flight struct {
	id    uint64
	stmts []slider.Statement
	reqs  int
	done  chan struct{}
	added int
	err   error
}

func newCoalescer(r *slider.Reasoner, reg *obs.Registry) *coalescer {
	return &coalescer{
		r: r,
		flushes: reg.Counter("slider_server_insert_flushes_total",
			"Coalesced AddBatch flushes issued by the insert path."),
		coalesced: reg.Counter("slider_server_coalesced_requests_total",
			"Insert requests that shared their flush with at least one other."),
	}
}

// submit adds the statements to the pending flight and blocks until that
// flight's AddBatch has been acknowledged (durably logged on a durable
// reasoner). It returns the merged batch's fresh-triple count, how many
// requests shared the flush, the flight id, and the flush error, which
// poisons every rider — by then the reasoner itself refuses writes, so
// no rider could have succeeded alone.
func (c *coalescer) submit(sts []slider.Statement) (added, merged int, id uint64, err error) {
	c.mu.Lock()
	fl := c.next
	if fl == nil {
		c.seq++
		fl = &flight{id: c.seq, done: make(chan struct{})}
		c.next = fl
	}
	fl.stmts = append(fl.stmts, sts...)
	fl.reqs++
	if !c.running {
		c.running = true
		go c.run()
	}
	c.mu.Unlock()
	<-fl.done
	return fl.added, fl.reqs, fl.id, fl.err
}

// run drains flights until none is pending. Requests arriving while an
// AddBatch is in progress accumulate into the next flight; once a flight
// is taken off c.next no request can join it, so its fields are stable
// when done closes.
func (c *coalescer) run() {
	for {
		c.mu.Lock()
		fl := c.next
		c.next = nil
		if fl == nil {
			c.running = false
			c.mu.Unlock()
			return
		}
		c.mu.Unlock()
		// Each flight is its own trace root, named by the same id the
		// access log prints for its riders — the flight recorder's JSON
		// and the request log correlate on it. The request spans that
		// fed the flight are separate traces (a flight outlives and
		// merges its requests); they carry the flight id as an attr.
		ctx, sp := trace.Start(context.Background(), "ingest.flight")
		sp.SetInt("flight", int64(fl.id))
		sp.SetInt("requests", int64(fl.reqs))
		sp.SetInt("statements", int64(len(fl.stmts)))
		fl.added, fl.err = c.r.AddBatchCtx(ctx, fl.stmts)
		if fl.err != nil {
			sp.Error(fl.err.Error())
		}
		sp.SetInt("added", int64(fl.added))
		sp.End()
		c.flushes.Inc()
		if fl.reqs > 1 {
			c.coalesced.Add(int64(fl.reqs))
		}
		close(fl.done)
	}
}
