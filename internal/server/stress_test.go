package server

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"

	slider "repro"
)

// TestServerStressConsistency hammers the server with concurrent
// inserters, a retractor and queriers (run it under -race), and checks
// the serving guarantee: every query answer is a consistent closure of
// some acknowledged prefix of the writes.
//
// Schema: C0 ⊂ C1 ⊂ … ⊂ C5 is loaded up front. Each writer w POSTs
// members m<w>_0 … m<w>_{n-1} typed C0, one statement per request, in
// order — so the acknowledged prefix of writer w at any instant is
// m<w>_0 … m<w>_{k}. Each query asks for all C0 members and its snapshot
// must satisfy, per writer, the prefix property (member k visible ⟹ all
// earlier members visible) — tearing a batch or reading mid-inference
// would break it. A separate retractor inserts and retracts its own
// members, exercising DRed under load; closure is checked cross-snapshot
// via monotone C5 growth on writer members only.
func TestServerStressConsistency(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	_, ts, _ := newTestServer(t, Config{MaxInflight: 128}, slider.WithViewMaxAge(-1))

	var schema strings.Builder
	for i := 0; i < 5; i++ {
		schema.WriteString(ntLine(fmt.Sprintf("C%d", i), slider.SubClassOf, fmt.Sprintf("C%d", i+1)))
	}
	if resp, b := post(t, ts.URL+"/v1/insert", "", schema.String()); resp.StatusCode != 200 {
		t.Fatalf("schema insert: %d %s", resp.StatusCode, b)
	}

	const writers, perWriter = 4, 60
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				line := ntLine(fmt.Sprintf("m%d_%d", w, i), typeIRI(), "C0")
				resp, body := post(t, ts.URL+"/v1/insert", "", line)
				if resp.StatusCode != 200 {
					t.Errorf("writer %d insert %d: %d %s", w, i, resp.StatusCode, body)
					return
				}
			}
		}(w)
	}

	// Retractor: inserts its own members and retracts them again,
	// running delete-and-rederive concurrently with everything else.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 25; i++ {
			line := ntLine(fmt.Sprintf("r%d", i), typeIRI(), "C0")
			if resp, b := post(t, ts.URL+"/v1/insert", "", line); resp.StatusCode != 200 {
				t.Errorf("retractor insert %d: %d %s", i, resp.StatusCode, b)
				return
			}
			if resp, b := post(t, ts.URL+"/v1/retract", "", line); resp.StatusCode != 200 {
				t.Errorf("retract %d: %d %s", i, resp.StatusCode, b)
				return
			}
		}
	}()

	// Queriers: check the per-writer prefix property within each
	// snapshot, and collect C0 members for the cross-snapshot closure
	// check below.
	type seenSet map[string]bool
	seenC0 := make(chan seenSet, 64)
	querierDone := make(chan struct{})
	queriers := 3
	var qwg sync.WaitGroup
	for q := 0; q < queriers; q++ {
		qwg.Add(1)
		go func() {
			defer qwg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_, rows, trailer := queryRows(t, ts.URL,
					`SELECT ?m WHERE { ?m a <http://example.org/C0> . }`)
				if e, ok := trailer["error"]; ok {
					t.Errorf("query error: %v", e)
					return
				}
				maxIdx := make([]int, writers)
				for i := range maxIdx {
					maxIdx[i] = -1
				}
				got := seenSet{}
				for _, row := range rows {
					m := row["m"]
					got[m] = true
					var w, i int
					if n, _ := fmt.Sscanf(m, "<"+exNS+"m%d_%d>", &w, &i); n == 2 && i > maxIdx[w] {
						maxIdx[w] = i
					}
				}
				// Prefix property: member k visible ⟹ members 0..k-1 visible.
				for w := 0; w < writers; w++ {
					for i := 0; i < maxIdx[w]; i++ {
						if !got[fmt.Sprintf("<%sm%d_%d>", exNS, w, i)] {
							t.Errorf("snapshot holds m%d_%d but not m%d_%d: not a prefix",
								w, maxIdx[w], w, i)
							return
						}
					}
				}
				select {
				case seenC0 <- got:
				default:
				}
			}
		}()
	}
	go func() { qwg.Wait(); close(querierDone) }()

	wg.Wait()
	close(stop)
	<-querierDone
	close(seenC0)

	// Cross-snapshot closure check: writes only grow the writer members'
	// closure (the retractor only touches its own r<i> subjects), so
	// every writer member a snapshot showed as C0 must be typed C5 in
	// the final state.
	_, rows, _ := queryRows(t, ts.URL,
		`SELECT ?m WHERE { ?m a <http://example.org/C5> . }`)
	finalC5 := map[string]bool{}
	for _, row := range rows {
		finalC5[row["m"]] = true
	}
	for got := range seenC0 {
		for m := range got {
			if strings.Contains(m, "/r") {
				continue // retractor's members may legitimately vanish
			}
			if strings.Contains(m, "/m") && !finalC5[m] {
				t.Fatalf("member %s was C0 in a snapshot but never closed to C5", m)
			}
		}
	}

	// Every writer's full set made it.
	_, rows, _ = queryRows(t, ts.URL,
		`SELECT ?m WHERE { ?m a <http://example.org/C0> . }`)
	count := 0
	for _, row := range rows {
		if strings.Contains(row["m"], "/m") {
			count++
		}
	}
	if count != writers*perWriter {
		t.Fatalf("final C0 members = %d, want %d", count, writers*perWriter)
	}
}

// TestServerStressCoalesces checks that sustained concurrent ingest
// actually exercises the write-coalescing path: with many clients
// inserting at once, at least one flush must have merged requests.
func TestServerStressCoalesces(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	s, ts, _ := newTestServer(t, Config{MaxInflight: 128})
	const clients, perClient = 16, 30
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				line := ntLine("s"+strconv.Itoa(c)+"_"+strconv.Itoa(i), typeIRI(), "T")
				if resp, b := post(t, ts.URL+"/v1/insert", "", line); resp.StatusCode != 200 {
					t.Errorf("insert: %d %s", resp.StatusCode, b)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	flushes, coalesced := s.coal.flushes.Load(), s.coal.coalesced.Load()
	if flushes == 0 {
		t.Fatal("no flushes recorded")
	}
	if flushes >= clients*perClient {
		t.Fatalf("every request flushed alone (%d flushes for %d requests): coalescing never engaged",
			flushes, clients*perClient)
	}
	if coalesced == 0 {
		t.Fatal("no request ever shared a flush")
	}
	t.Logf("%d requests → %d flushes (%d coalesced)", clients*perClient, flushes, coalesced)
}
