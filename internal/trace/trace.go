// Package trace is Slider's flight-path tracer: request-scoped spans
// that follow one operation — an insert flight, a query, a view
// refresh, a compaction pass — across the pipeline's layers, in the
// style of internal/obs: zero dependencies, allocation-light, and a
// global kill switch that elides even the clock reads.
//
// trace.Start(ctx, name) opens a span (a child when ctx already
// carries one, a new root otherwise) and returns a derived context;
// Span.Child attaches an asynchronous child without a context. Every
// Span method is nil-safe, so call sites never branch on the switch:
// when tracing is disabled Start returns a nil span and the whole
// path costs one atomic load.
//
// A trace stays open until every span in it — including asynchronous
// children that outlive the root, such as a batch's time-to-inference
// -quiescence and time-to-view-visibility spans — has ended. Completed
// traces feed the flight recorder (see recorder.go): roots slower than
// a per-family adaptive threshold, or that ended in error, are retained
// in a bounded ring served as JSON at GET /debug/traces.
//
// Root spans carry W3C trace context: StartRequest adopts the trace id
// of an incoming `traceparent` header and Span.Traceparent renders the
// outgoing one, so a Slider flight can join a caller's distributed
// trace.
package trace

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// disabled is the global kill switch. The zero value means tracing is
// ON — mirroring internal/obs, where a freshly linked binary observes
// by default and benchmarks opt out explicitly.
var disabled atomic.Bool

// Enabled reports whether tracing is collecting spans.
func Enabled() bool { return !disabled.Load() }

// SetEnabled flips tracing globally. Spans already open keep working
// either way: ending them is always safe, their clock reads just stop.
func SetEnabled(on bool) { disabled.Store(!on) }

// Disabled turns tracing off and returns a func restoring the previous
// state — for benchmarks measuring the traced path against baseline:
//
//	defer trace.Disabled()()
func Disabled() (restore func()) {
	prev := Enabled()
	SetEnabled(false)
	return func() { SetEnabled(prev) }
}

// now is the trace clock: the zero time when tracing is disabled, so
// span paths never pay the clock read (the trace-package analog of
// obs.NowIfEnabled). Durations degrade gracefully when the switch
// flips mid-span: a zero endpoint yields a zero duration, never a
// bogus one.
func now() time.Time {
	if disabled.Load() {
		return time.Time{}
	}
	return time.Now()
}

// idState seeds span/trace id generation; ids are a splitmix64 stream
// over an atomic counter, seeded from the wall clock at process start
// so two daemons don't mint colliding trace ids.
var idState atomic.Uint64

func init() { idState.Store(uint64(time.Now().UnixNano())) }

// nextID returns a non-zero pseudo-random 64-bit id (splitmix64).
func nextID() uint64 {
	x := idState.Add(0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	if x == 0 {
		x = 1
	}
	return x
}

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string
	Str   string
	Num   int64
	isNum bool
}

// String builds a string-valued attribute.
func String(key, val string) Attr { return Attr{Key: key, Str: val} }

// Int builds an integer-valued attribute.
func Int(key string, val int64) Attr { return Attr{Key: key, Num: val, isNum: true} }

// value renders the attribute's value for JSON export.
func (a Attr) value() any {
	if a.isNum {
		return a.Num
	}
	return a.Str
}

// Span is one timed operation in a trace. The zero of *Span (nil) is a
// valid no-op span: every method checks, so disabled-tracing call sites
// need no branches.
type Span struct {
	tr               *Tracer
	root             *Span
	name             string
	traceHi, traceLo uint64
	id               uint64
	parent           uint64 // parent span id; 0 for a local root
	start            time.Time

	mu       sync.Mutex
	attrs    []Attr
	children []*Span
	end      time.Time
	ended    bool
	failed   bool

	// Root-only trace state (accessed via s.root on every span):
	// open counts spans in the trace not yet ended; the End that
	// drives it to zero completes the trace. lastEnd tracks the
	// latest span end (UnixNano) so a flight's recorded duration
	// covers asynchronous children that outlive the root span.
	open     atomic.Int64
	lastEnd  atomic.Int64
	errAny   atomic.Bool
	finished atomic.Bool
	reason   string        // why the flight recorder retained it
	flight   time.Duration // full-flight duration at retention time
}

// ctxKey carries the current span in a context.
type ctxKey struct{}

// FromContext returns the span carried by ctx, or nil (also nil when
// tracing is disabled, so downstream Child calls stay free).
func FromContext(ctx context.Context) *Span {
	if disabled.Load() {
		return nil
	}
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// ContextWith returns ctx carrying s (a no-op for a nil span).
func ContextWith(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// Start opens a span named name: a child of the span carried by ctx,
// or a new trace root when ctx has none. The returned context carries
// the new span. When tracing is disabled it returns (ctx, nil)
// untouched — one atomic load, no clock read, no allocation beyond
// any attrs the caller built.
func Start(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	if disabled.Load() {
		return ctx, nil
	}
	parent, _ := ctx.Value(ctxKey{}).(*Span)
	s := Default.newSpan(parent, name, attrs)
	return context.WithValue(ctx, ctxKey{}, s), s
}

// StartRoot opens a context-free root span — for background work
// (compaction passes, coalesced ingest flights) that is its own trace.
func StartRoot(name string, attrs ...Attr) *Span {
	if disabled.Load() {
		return nil
	}
	return Default.newSpan(nil, name, attrs)
}

// StartRequest opens a root span for an incoming request. When
// traceparent holds a valid W3C trace context header
// ("00-<32 hex trace id>-<16 hex parent id>-<2 hex flags>") the root
// adopts its trace id and remote parent, so the flight joins the
// caller's distributed trace; otherwise a fresh trace id is minted.
// The span name is derived from the serving layer's route table, not
// spelled at call sites, so it is exempt from the spannames checker.
func StartRequest(ctx context.Context, name, traceparent string) (context.Context, *Span) {
	if disabled.Load() {
		return ctx, nil
	}
	s := Default.newSpan(nil, name, nil)
	if hi, lo, parent, ok := parseTraceparent(traceparent); ok {
		s.traceHi, s.traceLo, s.parent = hi, lo, parent
	}
	return context.WithValue(ctx, ctxKey{}, s), s
}

// Child attaches a child span without a context — the form used for
// asynchronous work registered under a parent (inference quiescence,
// view visibility) and for tight pipeline stages where threading a
// derived context through existing signatures isn't worth it. Nil-safe.
func (s *Span) Child(name string, attrs ...Attr) *Span {
	if s == nil || disabled.Load() {
		return nil
	}
	return s.tr.newSpan(s, name, attrs)
}

// newSpan allocates and links a span. A child of an already-finished
// trace (a straggler racing the last End) becomes a fresh root that
// keeps the parent's trace id, so the late span is still recorded and
// the completed trace's accounting is never reopened.
func (tr *Tracer) newSpan(parent *Span, name string, attrs []Attr) *Span {
	s := &Span{tr: tr, name: name, id: nextID(), start: now()}
	if len(attrs) > 0 {
		s.attrs = attrs
	}
	root := (*Span)(nil)
	if parent != nil && !parent.root.finished.Load() {
		root = parent.root
	}
	if root != nil {
		s.root = root
		s.parent = parent.id
		s.traceHi, s.traceLo = parent.traceHi, parent.traceLo
		root.open.Add(1)
		parent.mu.Lock()
		parent.children = append(parent.children, s)
		parent.mu.Unlock()
		return s
	}
	s.root = s
	s.open.Store(1)
	if parent != nil {
		s.traceHi, s.traceLo = parent.traceHi, parent.traceLo
		s.parent = parent.id
	} else {
		s.traceHi, s.traceLo = nextID(), nextID()
	}
	return s
}

// End closes the span. The End that closes the trace's last open span
// hands the root to the flight recorder. Ending twice is a bug — the
// second call is ignored (asserted under the slider_invariants tag).
// Nil-safe.
func (s *Span) End() {
	if s == nil {
		return
	}
	t := now()
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		assertEndOnce(s.name)
		return
	}
	s.ended = true
	s.end = t
	failed := s.failed
	s.mu.Unlock()
	if failed {
		s.root.errAny.Store(true)
	}
	if !t.IsZero() {
		ns := t.UnixNano()
		for {
			old := s.root.lastEnd.Load()
			if ns <= old || s.root.lastEnd.CompareAndSwap(old, ns) {
				break
			}
		}
	}
	s.tr.record(s, t, failed)
	if n := s.root.open.Add(-1); n == 0 {
		s.tr.finishTrace(s.root)
	} else {
		assertOpenNonNegative(n)
	}
}

// SetStr annotates the span with a string attribute. Non-variadic so
// hot paths pay no slice allocation when the span is nil. Nil-safe.
func (s *Span) SetStr(key, val string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, String(key, val))
	s.mu.Unlock()
}

// SetInt annotates the span with an integer attribute. Nil-safe.
func (s *Span) SetInt(key string, val int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Int(key, val))
	s.mu.Unlock()
}

// Error marks the span failed — its trace is always retained by the
// flight recorder — and records msg as an "error" attribute. Nil-safe.
func (s *Span) Error(msg string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.failed = true
	if msg != "" {
		s.attrs = append(s.attrs, String("error", msg))
	}
	s.mu.Unlock()
	s.root.errAny.Store(true)
}

// Name returns the span's family name ("" for nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// TraceID renders the 128-bit trace id as 32 hex digits ("" for nil).
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return fmt.Sprintf("%016x%016x", s.traceHi, s.traceLo)
}

// Traceparent renders the span as an outgoing W3C traceparent header
// ("" for nil), marking the trace sampled.
func (s *Span) Traceparent() string {
	if s == nil {
		return ""
	}
	return fmt.Sprintf("00-%016x%016x-%016x-01", s.traceHi, s.traceLo, s.id)
}

// parseTraceparent parses a W3C traceparent header. Only version 00 is
// accepted; an all-zero trace id is invalid per spec.
func parseTraceparent(h string) (hi, lo, parent uint64, ok bool) {
	if len(h) != 55 || h[0] != '0' || h[1] != '0' || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return 0, 0, 0, false
	}
	var err error
	if hi, err = strconv.ParseUint(h[3:19], 16, 64); err != nil {
		return 0, 0, 0, false
	}
	if lo, err = strconv.ParseUint(h[19:35], 16, 64); err != nil {
		return 0, 0, 0, false
	}
	if parent, err = strconv.ParseUint(h[36:52], 16, 64); err != nil {
		return 0, 0, 0, false
	}
	if _, err = strconv.ParseUint(h[53:55], 16, 8); err != nil {
		return 0, 0, 0, false
	}
	if hi == 0 && lo == 0 {
		return 0, 0, 0, false
	}
	return hi, lo, parent, true
}
