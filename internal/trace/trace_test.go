package trace

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"
)

// fresh returns a Tracer wired as Default for the duration of the
// test, with retention opened wide (threshold zero retains everything).
func fresh(t *testing.T) *Tracer {
	t.Helper()
	prev := Default
	tr := New()
	tr.SetSlowThreshold(0)
	Default = tr
	t.Cleanup(func() { Default = prev })
	return tr
}

func TestSpanTreeAndRetention(t *testing.T) {
	tr := fresh(t)
	ctx, root := Start(context.Background(), "ingest.flight", Int("flight", 7))
	if root == nil {
		t.Fatal("Start returned nil span with tracing enabled")
	}
	ctx2, batch := Start(ctx, "ingest.batch")
	wal := batch.Child("wal.append")
	wal.SetInt("bytes", 123)
	wal.End()
	if got := FromContext(ctx2); got != batch {
		t.Fatalf("FromContext = %v, want the batch span", got)
	}
	batch.End()
	root.End()

	if n := tr.RootsRetained(); n != 1 {
		t.Fatalf("RootsRetained = %d, want 1", n)
	}
	snap := tr.Snapshot(true)
	if len(snap.Traces) != 1 {
		t.Fatalf("retained traces = %d, want 1", len(snap.Traces))
	}
	tj := snap.Traces[0]
	if tj.Name != "ingest.flight" || tj.Spans != 3 {
		t.Fatalf("trace = %q with %d spans, want ingest.flight with 3", tj.Name, tj.Spans)
	}
	if tj.TraceID != root.TraceID() || len(tj.TraceID) != 32 {
		t.Fatalf("trace id %q does not match root %q", tj.TraceID, root.TraceID())
	}
	// Child spans carry the root's trace id end to end.
	if wal.TraceID() != root.TraceID() || batch.TraceID() != root.TraceID() {
		t.Fatal("child spans do not share the root trace id")
	}
	if len(tj.Root.Children) != 1 || len(tj.Root.Children[0].Children) != 1 {
		t.Fatalf("span tree shape wrong: %+v", tj.Root)
	}
	leaf := tj.Root.Children[0].Children[0]
	if leaf.Name != "wal.append" || leaf.Attrs["bytes"] != int64(123) {
		t.Fatalf("leaf span = %+v", leaf)
	}
	if leaf.ParentID != tj.Root.Children[0].SpanID {
		t.Fatal("leaf parent id does not point at ingest.batch")
	}
	if len(snap.RecentSpans) != 3 {
		t.Fatalf("recent spans = %d, want 3", len(snap.RecentSpans))
	}
}

func TestAsyncChildHoldsTraceOpen(t *testing.T) {
	tr := fresh(t)
	_, root := Start(context.Background(), "ingest.flight")
	async := root.Child("view.visible")
	root.End()
	if n := tr.RootsRetained(); n != 0 {
		t.Fatalf("trace finished with async child still open (retained %d)", n)
	}
	time.Sleep(2 * time.Millisecond)
	async.End()
	if n := tr.RootsRetained(); n != 1 {
		t.Fatalf("RootsRetained = %d after last child ended, want 1", n)
	}
	// Flight duration covers the async child, not just the root span.
	tj := tr.Snapshot(false).Traces[0]
	if tj.DurUS < 2000 {
		t.Fatalf("flight dur %dus does not cover the async child", tj.DurUS)
	}
}

func TestDisabledElidesEverything(t *testing.T) {
	fresh(t)
	restore := Disabled()
	defer restore()
	ctx, sp := Start(context.Background(), "ingest.batch", Int("n", 1))
	if sp != nil {
		t.Fatal("Start returned a live span while disabled")
	}
	if FromContext(ctx) != nil {
		t.Fatal("FromContext returned a span while disabled")
	}
	// All methods are nil-safe no-ops.
	sp.SetInt("k", 1)
	sp.SetStr("k", "v")
	sp.Error("boom")
	sp.End()
	if c := sp.Child("x"); c != nil {
		t.Fatal("Child on nil span returned a live span")
	}
	if StartRoot("compact.flush") != nil {
		t.Fatal("StartRoot returned a live span while disabled")
	}
}

func TestErrorTracesAlwaysRetained(t *testing.T) {
	tr := fresh(t)
	tr.SetSlowThreshold(time.Hour) // nothing is "slow"
	// First completion of a family is the exemplar; burn it.
	_, s := Start(context.Background(), "http.insert")
	s.End()
	_, fast := Start(context.Background(), "http.insert")
	fast.End()
	if n := tr.RootsRetained(); n != 1 {
		t.Fatalf("fast clean trace retained (got %d)", n)
	}
	_, bad := Start(context.Background(), "http.insert")
	child := bad.Child("wal.append")
	child.Error("disk full")
	child.End()
	bad.End()
	if n := tr.RootsRetained(); n != 2 {
		t.Fatalf("error trace not retained (got %d)", n)
	}
	tj := tr.Snapshot(false).Traces[0]
	if tj.Reason != "error" {
		t.Fatalf("reason = %q, want error", tj.Reason)
	}
	if !tj.Root.Children[0].Err || tj.Root.Children[0].Attrs["error"] != "disk full" {
		t.Fatalf("child error not recorded: %+v", tj.Root.Children[0])
	}
}

func TestRingCapacityEvictsOldest(t *testing.T) {
	tr := fresh(t)
	tr.SetRingCapacity(2)
	for i := 0; i < 5; i++ {
		_, s := Start(context.Background(), "compact.flush")
		s.End()
	}
	if n := tr.RootsRetained(); n != 5 {
		t.Fatalf("RootsRetained = %d, want 5 (counter is total, not ring size)", n)
	}
	if got := len(tr.Retained()); got != 2 {
		t.Fatalf("ring holds %d traces, want 2", got)
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	fresh(t)
	_, s := Start(context.Background(), "http.query")
	h := s.Traceparent()
	hi, lo, parent, ok := parseTraceparent(h)
	if !ok {
		t.Fatalf("own traceparent %q did not parse", h)
	}
	if hex128(hi, lo) != s.TraceID() || parent != s.id {
		t.Fatalf("round trip mismatch: %q", h)
	}
	s.End()

	const in = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	ctx, rs := StartRequest(context.Background(), "http.insert", in)
	if rs.TraceID() != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("adopted trace id = %q", rs.TraceID())
	}
	if !strings.HasPrefix(rs.Traceparent(), "00-4bf92f3577b34da6a3ce929d0e0e4736-") {
		t.Fatalf("outgoing traceparent %q lost the adopted trace id", rs.Traceparent())
	}
	if FromContext(ctx) != rs {
		t.Fatal("StartRequest context does not carry the span")
	}
	rs.End()

	for _, bad := range []string{
		"",
		"garbage",
		"01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // unknown version
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01", // zero trace id
		"00-4bf92f3577b34da6a3ce929d0e0e47zz-00f067aa0ba902b7-01", // non-hex
	} {
		if _, _, _, ok := parseTraceparent(bad); ok {
			t.Errorf("parseTraceparent(%q) accepted", bad)
		}
	}
	// A fresh id must be minted for the invalid header, not a zero one.
	_, ns := StartRequest(context.Background(), "http.insert", "garbage")
	if ns.TraceID() == strings.Repeat("0", 32) {
		t.Fatal("invalid traceparent produced a zero trace id")
	}
	ns.End()
}

func TestWriteJSONIsValid(t *testing.T) {
	tr := fresh(t)
	_, s := Start(context.Background(), "view.refresh")
	s.Child("infer.rounds").End()
	s.End()
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf, true); err != nil {
		t.Fatal(err)
	}
	var snap map[string]any
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if snap["roots_retained"].(float64) < 1 {
		t.Fatalf("roots_retained = %v", snap["roots_retained"])
	}
}

// TestConcurrentSpans exercises the accounting under -race: many
// goroutines building trees with async children against one root.
func TestConcurrentSpans(t *testing.T) {
	tr := fresh(t)
	tr.SetRingCapacity(8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				ctx, root := Start(context.Background(), "ingest.flight")
				_, batch := Start(ctx, "ingest.batch")
				async := batch.Child("view.visible")
				batch.SetInt("i", int64(i))
				batch.End()
				root.End()
				async.End()
			}
		}()
	}
	wg.Wait()
	if n := tr.rootsTotal.Load(); n != 8*200 {
		t.Fatalf("rootsTotal = %d, want %d", n, 8*200)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf, true); err != nil {
		t.Fatal(err)
	}
}

func TestLateChildAfterTraceFinished(t *testing.T) {
	tr := fresh(t)
	_, root := Start(context.Background(), "ingest.flight")
	root.End() // trace completes
	late := root.Child("view.visible")
	if late == nil {
		t.Fatal("late child dropped")
	}
	if late.TraceID() != root.TraceID() {
		t.Fatal("late child lost the trace id")
	}
	late.End()
	// Both the original trace and the straggler completed cleanly.
	if n := tr.rootsTotal.Load(); n != 2 {
		t.Fatalf("rootsTotal = %d, want 2", n)
	}
}

func TestSlowOpLogGatedOnReason(t *testing.T) {
	tr := fresh(t)
	var buf bytes.Buffer
	tr.SetLogger(slog.New(slog.NewTextHandler(&buf, nil)))

	// An exemplar retention (first completion of a family, well under
	// any threshold) must stay silent: it is retained for /debug/traces
	// but is not a slow operation.
	tr.SetSlowThreshold(time.Hour)
	StartRoot("ingest.flight").End()
	if buf.Len() != 0 {
		t.Fatalf("exemplar retention logged: %s", buf.String())
	}

	// A genuinely slow root (threshold zero keeps adaptive thresholding
	// off, so the second completion retains as "slow") must emit the
	// structured line with the span family and trace id.
	tr.SetSlowThreshold(0)
	sp := StartRoot("ingest.flight")
	sp.End()
	line := buf.String()
	if !strings.Contains(line, "slow operation") ||
		!strings.Contains(line, "span=ingest.flight") ||
		!strings.Contains(line, "reason=slow") ||
		!strings.Contains(line, sp.TraceID()) {
		t.Fatalf("slow-op line missing fields: %q", line)
	}
}
