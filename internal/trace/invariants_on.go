//go:build slider_invariants

package trace

// Tagged runtime invariants, compiled in by the slider_invariants
// build tag (see INVARIANTS.md): span lifecycle and ring-bound
// assertions that are too hot to check in normal builds.

import "fmt"

// assertEndOnce fires when a span is ended twice — the second End is
// ignored in normal builds, but it means some path double-closes and
// the trace's open-span accounting was only saved by the ended flag.
func assertEndOnce(name string) {
	panic("trace: span " + name + " ended twice")
}

// assertOpenNonNegative fires when a trace's open-span counter goes
// below zero: more Ends than Starts, i.e. a span escaped accounting.
func assertOpenNonNegative(n int64) {
	if n < 0 {
		panic(fmt.Sprintf("trace: open-span counter went negative (%d)", n))
	}
}

// assertRingBounded fires when the retained-trace ring exceeds its
// configured capacity.
func assertRingBounded(n, capN int) {
	if n > capN {
		panic(fmt.Sprintf("trace: retained ring holds %d traces, capacity %d", n, capN))
	}
}
