// The flight recorder: where completed spans and traces land. Every
// ended span leaves a fixed-size summary in one of a few sharded ring
// buffers (recent activity, cheap to write, lossy by design). Completed
// *traces* — the root plus its whole tree — are retained only when
// interesting: slower than a per-family adaptive threshold, ended in
// error, or the first completion of their family (an exemplar, so
// /debug/traces is never empty on a healthy daemon). Retained traces
// live in a bounded ring, are served as JSON, and emit one structured
// slow-op log line each.
package trace

import (
	"encoding/json"
	"io"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"
)

const (
	// recentShards × recentPerShard bounds the recent-span memory;
	// shards cut contention between concurrently-ending spans.
	recentShards   = 8
	recentPerShard = 64

	// defaultRingCap bounds retained traces (-trace-ring).
	defaultRingCap = 128
	// defaultSlowFloor is the retention threshold floor (-trace-slow):
	// below it a flight is never "slow", however fast its family
	// usually runs.
	defaultSlowFloor = 25 * time.Millisecond

	// The adaptive threshold: a flight is slow when it exceeds
	// slowMultiple × its family's EWMA (alpha 1/2^ewmaShift) and the
	// floor.
	ewmaShift    = 3
	slowMultiple = 4
)

// Tracer owns the rings and retention policy. Package-level Start
// routes through Default; separate Tracers exist for tests.
type Tracer struct {
	slowFloor atomic.Int64 // ns
	ringCap   atomic.Int64
	logger    atomic.Pointer[slog.Logger]

	rootsTotal    atomic.Int64
	rootsRetained atomic.Int64

	mu   sync.Mutex
	ring []*Span // retained roots, oldest first

	families sync.Map // root family name -> *family

	shards [recentShards]recentShard
}

// family is per-root-name retention state: completion count and an
// EWMA of flight durations. Updates race benignly (load/store, not
// CAS): the threshold is a heuristic, not an invariant.
type family struct {
	count atomic.Int64
	ewma  atomic.Int64 // ns
}

// recentShard is one lossy ring of completed-span summaries.
type recentShard struct {
	mu  sync.Mutex
	n   uint64 // total spans written; next slot = n % recentPerShard
	buf [recentPerShard]spanRecord
}

// spanRecord is the fixed-size summary of one completed span.
type spanRecord struct {
	name             string
	traceHi, traceLo uint64
	id, parent       uint64
	start            time.Time
	dur              time.Duration
	err              bool
}

// New returns a Tracer with default retention knobs.
func New() *Tracer {
	tr := &Tracer{}
	tr.slowFloor.Store(int64(defaultSlowFloor))
	tr.ringCap.Store(defaultRingCap)
	return tr
}

// Default is the process-wide tracer behind Start/StartRoot/StartRequest.
var Default = New()

// SetSlowThreshold sets the flight-recorder floor: a flight shorter
// than d is never retained as slow (errors and exemplars still are).
// Zero retains every completed trace — useful in tests.
func (tr *Tracer) SetSlowThreshold(d time.Duration) { tr.slowFloor.Store(int64(d)) }

// SetRingCapacity bounds how many interesting traces are retained.
func (tr *Tracer) SetRingCapacity(n int) {
	if n < 1 {
		n = 1
	}
	tr.ringCap.Store(int64(n))
}

// SetLogger installs the logger that receives one structured slow-op
// line per retained trace (nil disables the lines).
func (tr *Tracer) SetLogger(l *slog.Logger) { tr.logger.Store(l) }

// record files a completed span's summary into its shard's ring.
func (tr *Tracer) record(s *Span, end time.Time, failed bool) {
	var dur time.Duration
	if !end.IsZero() && !s.start.IsZero() {
		dur = end.Sub(s.start)
	}
	sh := &tr.shards[s.id&(recentShards-1)]
	sh.mu.Lock()
	sh.buf[sh.n%recentPerShard] = spanRecord{
		name:    s.name,
		traceHi: s.traceHi, traceLo: s.traceLo,
		id: s.id, parent: s.parent,
		start: s.start, dur: dur, err: failed,
	}
	sh.n++
	sh.mu.Unlock()
}

// finishTrace runs once per trace, when its last open span ends:
// update the family EWMA, decide retention, and log. Idempotent via
// the root's finished flag (a straggler child can race the final End).
func (tr *Tracer) finishTrace(root *Span) {
	if !root.finished.CompareAndSwap(false, true) {
		return
	}
	tr.rootsTotal.Add(1)
	var dur time.Duration
	if !root.start.IsZero() {
		if last := root.lastEnd.Load(); last > root.start.UnixNano() {
			dur = time.Duration(last - root.start.UnixNano())
		}
	}
	fi, _ := tr.families.LoadOrStore(root.name, &family{})
	f := fi.(*family)
	n := f.count.Add(1)
	prev := f.ewma.Load()
	if n == 1 {
		f.ewma.Store(int64(dur))
	} else {
		f.ewma.Store(prev + (int64(dur)-prev)>>ewmaShift)
	}
	var reason string
	switch {
	case root.errAny.Load():
		reason = "error"
	case n == 1:
		reason = "exemplar"
	default:
		// A non-positive floor disables the adaptive threshold too:
		// retain every completed trace (the test configuration).
		thr := tr.slowFloor.Load()
		if thr > 0 {
			if adaptive := slowMultiple * prev; adaptive > thr {
				thr = adaptive
			}
		}
		if int64(dur) >= thr {
			reason = "slow"
		}
	}
	if reason == "" {
		return
	}
	root.reason = reason
	root.flight = dur
	tr.rootsRetained.Add(1)
	tr.mu.Lock()
	capN := int(tr.ringCap.Load())
	if len(tr.ring) >= capN {
		drop := len(tr.ring) - capN + 1
		copy(tr.ring, tr.ring[drop:])
		for i := len(tr.ring) - drop; i < len(tr.ring); i++ {
			tr.ring[i] = nil
		}
		tr.ring = tr.ring[:len(tr.ring)-drop]
	}
	tr.ring = append(tr.ring, root)
	assertRingBounded(len(tr.ring), capN)
	tr.mu.Unlock()
	// Exemplars are routine (every family's first completion); they go
	// in the ring for /debug/traces but do not warrant a warning.
	if lg := tr.logger.Load(); lg != nil && reason != "exemplar" {
		lg.Warn("slow operation",
			"span", root.name,
			"reason", reason,
			"trace", root.TraceID(),
			"dur_ms", float64(dur)/float64(time.Millisecond),
			"spans", root.treeSize())
	}
}

// Reset clears retained traces, family statistics, counters and the
// recent-span rings. For tests; knobs and the enabled switch persist.
func (tr *Tracer) Reset() {
	tr.mu.Lock()
	tr.ring = nil
	tr.mu.Unlock()
	tr.families.Range(func(k, _ any) bool {
		tr.families.Delete(k)
		return true
	})
	tr.rootsTotal.Store(0)
	tr.rootsRetained.Store(0)
	for i := range tr.shards {
		sh := &tr.shards[i]
		sh.mu.Lock()
		sh.n = 0
		sh.buf = [recentPerShard]spanRecord{}
		sh.mu.Unlock()
	}
}

// RootsRetained returns how many traces the recorder has retained.
func (tr *Tracer) RootsRetained() int64 { return tr.rootsRetained.Load() }

// Retained returns the retained roots, newest first. For tests and
// snapshot assembly.
func (tr *Tracer) Retained() []*Span {
	tr.mu.Lock()
	out := make([]*Span, len(tr.ring))
	for i, s := range tr.ring {
		out[len(tr.ring)-1-i] = s
	}
	tr.mu.Unlock()
	return out
}

// SpanJSON is the JSON shape of one span in a retained trace.
type SpanJSON struct {
	Name     string         `json:"name"`
	SpanID   string         `json:"span_id"`
	ParentID string         `json:"parent_id,omitempty"`
	Start    time.Time      `json:"start"`
	DurUS    int64          `json:"dur_us"`
	Open     bool           `json:"open,omitempty"` // still running at snapshot time
	Err      bool           `json:"err,omitempty"`
	Attrs    map[string]any `json:"attrs,omitempty"`
	Children []SpanJSON     `json:"children,omitempty"`
}

// TraceJSON is one retained trace: the root's tree plus why the flight
// recorder kept it. DurUS is the full flight — root start to the last
// span end, including asynchronous children that outlived the root.
type TraceJSON struct {
	TraceID string   `json:"trace_id"`
	Name    string   `json:"name"`
	Reason  string   `json:"reason"`
	DurUS   int64    `json:"dur_us"`
	Spans   int      `json:"spans"`
	Root    SpanJSON `json:"root"`
}

// RecentSpanJSON is one completed-span summary from the sharded rings.
type RecentSpanJSON struct {
	Name     string    `json:"name"`
	TraceID  string    `json:"trace_id"`
	SpanID   string    `json:"span_id"`
	ParentID string    `json:"parent_id,omitempty"`
	Start    time.Time `json:"start"`
	DurUS    int64     `json:"dur_us"`
	Err      bool      `json:"err,omitempty"`
}

// SnapshotJSON is the GET /debug/traces payload.
type SnapshotJSON struct {
	Enabled         bool             `json:"enabled"`
	SlowThresholdMS float64          `json:"slow_threshold_ms"`
	RingCapacity    int              `json:"ring_capacity"`
	RootsTotal      int64            `json:"roots_total"`
	RootsRetained   int64            `json:"roots_retained"`
	Traces          []TraceJSON      `json:"traces"`
	RecentSpans     []RecentSpanJSON `json:"recent_spans,omitempty"`
}

// Snapshot assembles the exportable state: retained traces newest
// first, plus (optionally) the recent-span rings.
func (tr *Tracer) Snapshot(includeRecent bool) SnapshotJSON {
	snap := SnapshotJSON{
		Enabled:         Enabled(),
		SlowThresholdMS: float64(tr.slowFloor.Load()) / float64(time.Millisecond),
		RingCapacity:    int(tr.ringCap.Load()),
		RootsTotal:      tr.rootsTotal.Load(),
		RootsRetained:   tr.rootsRetained.Load(),
		Traces:          []TraceJSON{},
	}
	for _, root := range tr.Retained() {
		snap.Traces = append(snap.Traces, TraceJSON{
			TraceID: root.TraceID(),
			Name:    root.name,
			Reason:  root.reason,
			DurUS:   root.flight.Microseconds(),
			Spans:   root.treeSize(),
			Root:    root.json(),
		})
	}
	if includeRecent {
		for i := range tr.shards {
			sh := &tr.shards[i]
			sh.mu.Lock()
			count := sh.n
			if count > recentPerShard {
				count = recentPerShard
			}
			for j := uint64(0); j < count; j++ {
				rec := &sh.buf[j]
				rj := RecentSpanJSON{
					Name:    rec.name,
					TraceID: hex128(rec.traceHi, rec.traceLo),
					SpanID:  hex64(rec.id),
					Start:   rec.start,
					DurUS:   rec.dur.Microseconds(),
					Err:     rec.err,
				}
				if rec.parent != 0 {
					rj.ParentID = hex64(rec.parent)
				}
				snap.RecentSpans = append(snap.RecentSpans, rj)
			}
			sh.mu.Unlock()
		}
	}
	return snap
}

// WriteJSON writes the snapshot as indented JSON.
func (tr *Tracer) WriteJSON(w io.Writer, includeRecent bool) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(tr.Snapshot(includeRecent))
}

// json renders the span subtree. Retained traces are complete (every
// span ended before finishTrace), but a snapshot can also catch a
// straggler child appended after retention — rendered with Open set.
func (s *Span) json() SpanJSON {
	s.mu.Lock()
	sj := SpanJSON{
		Name:   s.name,
		SpanID: hex64(s.id),
		Start:  s.start,
		Open:   !s.ended,
		Err:    s.failed,
	}
	if s.parent != 0 {
		sj.ParentID = hex64(s.parent)
	}
	if s.ended && !s.end.IsZero() && !s.start.IsZero() {
		sj.DurUS = s.end.Sub(s.start).Microseconds()
	}
	if len(s.attrs) > 0 {
		sj.Attrs = make(map[string]any, len(s.attrs))
		for _, a := range s.attrs {
			sj.Attrs[a.Key] = a.value()
		}
	}
	children := make([]*Span, len(s.children))
	copy(children, s.children)
	s.mu.Unlock()
	for _, c := range children {
		sj.Children = append(sj.Children, c.json())
	}
	return sj
}

// treeSize counts the spans in the subtree rooted at s.
func (s *Span) treeSize() int {
	s.mu.Lock()
	children := make([]*Span, len(s.children))
	copy(children, s.children)
	s.mu.Unlock()
	n := 1
	for _, c := range children {
		n += c.treeSize()
	}
	return n
}

// hex64 renders an id as 16 lowercase hex digits.
func hex64(v uint64) string {
	const digits = "0123456789abcdef"
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = digits[v&0xf]
		v >>= 4
	}
	return string(b[:])
}

// hex128 renders a 128-bit trace id as 32 hex digits.
func hex128(hi, lo uint64) string { return hex64(hi) + hex64(lo) }
