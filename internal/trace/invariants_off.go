//go:build !slider_invariants

package trace

// No-op stand-ins for the tagged runtime invariants (invariants_on.go):
// normal builds pay nothing for them.

func assertEndOnce(string)        {}
func assertOpenNonNegative(int64) {}
func assertRingBounded(int, int)  {}
