//go:build slider_invariants

package trace

import "testing"

// These tests corrupt span lifecycle state on purpose and assert the
// tagged checks panic — proving the assertion layer is live, not a
// silent no-op (the same bar the store and maintenance tagged suites
// set).

func mustPanic(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic under -tags slider_invariants", what)
		}
	}()
	f()
}

func TestTaggedDoubleEndPanics(t *testing.T) {
	fresh(t)
	sp := StartRoot("ingest.flight")
	sp.End()
	mustPanic(t, "double End", sp.End)
}

func TestTaggedRingBoundPanics(t *testing.T) {
	mustPanic(t, "over-capacity ring", func() {
		assertRingBounded(3, 2)
	})
}

func TestTaggedNegativeOpenCountPanics(t *testing.T) {
	mustPanic(t, "negative open count", func() {
		assertOpenNonNegative(-1)
	})
}
