// Package cmdutil holds the small helpers the slider commands share, so
// cmd/slider and cmd/sliderd do not drift apart on fragment naming or
// shutdown semantics.
package cmdutil

import (
	"context"
	"fmt"
	"time"

	slider "repro"
)

// FragmentByName resolves a CLI fragment name.
func FragmentByName(name string) (slider.Fragment, error) {
	switch name {
	case "rhodf", "rho-df", "rho":
		return slider.RhoDF, nil
	case "rdfs":
		return slider.RDFS, nil
	case "rdfs-lite":
		return slider.RDFSNoResourceTyping, nil
	case "owl-horst":
		return slider.OWLHorst, nil
	}
	return slider.Fragment{}, fmt.Errorf("unknown fragment %q (want rhodf | rdfs | rdfs-lite | owl-horst)", name)
}

// CloseBounded closes the reasoner but gives up after the bound: the
// engine drains queued rule executions regardless of context, which for
// a pathological inference backlog can take minutes — and with every
// acknowledged batch already in the write-ahead log, exiting without the
// close-time checkpoint is safe (the next open replays the log).
func CloseBounded(r *slider.Reasoner, bound time.Duration) error {
	ctx, cancel := context.WithTimeout(context.Background(), bound)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- r.Close(ctx) }()
	select {
	case err := <-done:
		return err
	case <-time.After(bound + 5*time.Second):
		return fmt.Errorf("close timed out after %s; exiting without the close-time checkpoint (the log replays on next open)", bound)
	}
}
