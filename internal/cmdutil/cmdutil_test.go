package cmdutil

import (
	"context"
	"testing"
	"time"

	slider "repro"
)

func TestFragmentByName(t *testing.T) {
	for _, name := range []string{"rhodf", "rho-df", "rho", "rdfs", "rdfs-lite", "owl-horst"} {
		frag, err := FragmentByName(name)
		if err != nil {
			t.Errorf("FragmentByName(%q): %v", name, err)
		}
		if len(frag.Rules()) == 0 {
			t.Errorf("FragmentByName(%q) returned empty fragment", name)
		}
	}
	if _, err := FragmentByName("owl-full"); err == nil {
		t.Error("unknown fragment accepted")
	}
}

func TestCloseBounded(t *testing.T) {
	r := slider.New(slider.RhoDF)
	if err := CloseBounded(r, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	// Already-closed engines close again as no-ops; the helper must not
	// hang or error on them.
	r2 := slider.New(slider.RhoDF)
	r2.Close(context.Background())
	if err := CloseBounded(r2, time.Second); err != nil {
		t.Fatal(err)
	}
}
