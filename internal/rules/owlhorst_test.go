package rules

import (
	"context"
	"testing"

	"repro/internal/rdf"
	"repro/internal/store"
)

func same(s, o rdf.ID) rdf.Triple { return rdf.T(s, rdf.IDSameAs, o) }
func inv(s, o rdf.ID) rdf.Triple  { return rdf.T(s, rdf.IDInverseOf, o) }
func eqc(s, o rdf.ID) rdf.Triple  { return rdf.T(s, rdf.IDEquivalentClass, o) }
func eqp(s, o rdf.ID) rdf.Triple  { return rdf.T(s, rdf.IDEquivalentProperty, o) }

func TestPrpSympBothDirections(t *testing.T) {
	symDecl := ty(p1, rdf.IDSymmetricProperty)
	// Assertion arrives after the declaration.
	got := applyRule(PrpSymp(), []rdf.Triple{symDecl}, []rdf.Triple{rdf.T(x, p1, y)})
	wantTriples(t, got, []rdf.Triple{rdf.T(y, p1, x)})
	// Declaration arrives after the assertions.
	got = applyRule(PrpSymp(), []rdf.Triple{rdf.T(x, p1, y), rdf.T(y, p1, z)}, []rdf.Triple{symDecl})
	wantTriples(t, got, []rdf.Triple{rdf.T(y, p1, x), rdf.T(z, p1, y)})
}

func TestPrpSympIgnoresNonSymmetric(t *testing.T) {
	got := applyRule(PrpSymp(), nil, []rdf.Triple{rdf.T(x, p1, y)})
	if len(got) != 0 {
		t.Fatalf("prp-symp fired without declaration: %v", got)
	}
}

func TestPrpSympSkipsLiterals(t *testing.T) {
	lit := rdf.NewDictionary().Encode(rdf.NewLiteral("v"))
	symDecl := ty(p1, rdf.IDSymmetricProperty)
	got := applyRule(PrpSymp(), []rdf.Triple{symDecl}, []rdf.Triple{rdf.T(x, p1, lit)})
	if len(got) != 0 {
		t.Fatalf("prp-symp mirrored a literal into subject position: %v", got)
	}
}

func TestPrpTrpBothDirections(t *testing.T) {
	trDecl := ty(p1, rdf.IDTransitiveProperty)
	// Declaration first, then assertions.
	got := applyRule(PrpTrp(), []rdf.Triple{trDecl, rdf.T(a, p1, b)}, []rdf.Triple{rdf.T(b, p1, c)})
	wantTriples(t, got, []rdf.Triple{rdf.T(a, p1, c)})
	// Declaration last: one-step closure over the existing extent.
	got = applyRule(PrpTrp(), []rdf.Triple{rdf.T(a, p1, b), rdf.T(b, p1, c)}, []rdf.Triple{trDecl})
	wantTriples(t, got, []rdf.Triple{rdf.T(a, p1, c)})
}

func TestPrpInvBothDirections(t *testing.T) {
	// Declaration in delta: mirror both extents.
	got := applyRule(PrpInv(), []rdf.Triple{rdf.T(x, p1, y), rdf.T(a, p2, b)}, []rdf.Triple{inv(p1, p2)})
	wantTriples(t, got, []rdf.Triple{rdf.T(y, p2, x), rdf.T(b, p1, a)})
	// Assertions in delta.
	got = applyRule(PrpInv(), []rdf.Triple{inv(p1, p2)}, []rdf.Triple{rdf.T(x, p1, y)})
	wantTriples(t, got, []rdf.Triple{rdf.T(y, p2, x)})
	got = applyRule(PrpInv(), []rdf.Triple{inv(p1, p2)}, []rdf.Triple{rdf.T(a, p2, b)})
	wantTriples(t, got, []rdf.Triple{rdf.T(b, p1, a)})
}

func TestPrpEqpReplaysBothWays(t *testing.T) {
	got := applyRule(PrpEqp(), []rdf.Triple{rdf.T(x, p1, y)}, []rdf.Triple{eqp(p1, p2)})
	wantTriples(t, got, []rdf.Triple{rdf.T(x, p2, y)})
	got = applyRule(PrpEqp(), []rdf.Triple{eqp(p1, p2)}, []rdf.Triple{rdf.T(x, p2, y)})
	wantTriples(t, got, []rdf.Triple{rdf.T(x, p1, y)})
}

func TestCaxEqcBothDirections(t *testing.T) {
	got := applyRule(CaxEqc(), []rdf.Triple{ty(x, a)}, []rdf.Triple{eqc(a, b)})
	wantTriples(t, got, []rdf.Triple{ty(x, b)})
	got = applyRule(CaxEqc(), []rdf.Triple{eqc(a, b)}, []rdf.Triple{ty(x, b)})
	wantTriples(t, got, []rdf.Triple{ty(x, a)})
}

func TestScmEqcAndEqp(t *testing.T) {
	got := applyRule(ScmEqc(), nil, []rdf.Triple{eqc(a, b)})
	wantTriples(t, got, []rdf.Triple{sc(a, b), sc(b, a)})
	got = applyRule(ScmEqp(), nil, []rdf.Triple{eqp(p1, p2)})
	wantTriples(t, got, []rdf.Triple{sp(p1, p2), sp(p2, p1)})
}

func TestEqSymTrans(t *testing.T) {
	got := applyRule(EqSymTrans(), nil, []rdf.Triple{same(a, b)})
	wantTriples(t, got, []rdf.Triple{same(b, a)})
	got = applyRule(EqSymTrans(), []rdf.Triple{same(a, b)}, []rdf.Triple{same(b, c)})
	wantTriples(t, got, []rdf.Triple{same(c, b), same(a, c)})
}

func TestEqRepSubstitution(t *testing.T) {
	// sameAs first, then the assertion: substitute subject and object.
	got := applyRule(EqRep(), []rdf.Triple{same(a, b)}, []rdf.Triple{rdf.T(a, p1, c)})
	wantTriples(t, got, []rdf.Triple{rdf.T(b, p1, c)})
	// Assertion first, then the sameAs.
	got = applyRule(EqRep(), []rdf.Triple{rdf.T(a, p1, c)}, []rdf.Triple{same(a, b)})
	wantTriples(t, got, []rdf.Triple{rdf.T(b, p1, c)})
	// Object substitution.
	got = applyRule(EqRep(), []rdf.Triple{same(c, d)}, []rdf.Triple{rdf.T(a, p1, c)})
	wantTriples(t, got, []rdf.Triple{rdf.T(a, p1, d)})
	// Predicate substitution.
	got = applyRule(EqRep(), []rdf.Triple{same(p1, p2)}, []rdf.Triple{rdf.T(a, p1, c)})
	wantTriples(t, got, []rdf.Triple{rdf.T(a, p2, c)})
}

func TestOWLHorstComposition(t *testing.T) {
	rs := OWLHorst()
	if len(rs) != 14+9 {
		t.Fatalf("OWL-Horst has %d rules, want 23", len(rs))
	}
	for _, name := range []string{"prp-symp", "prp-trp", "prp-inv", "prp-eqp",
		"cax-eqc", "scm-eqc", "scm-eqp", "eq-sym-trans", "eq-rep", "cax-sco"} {
		if ByName(rs, name) == nil {
			t.Errorf("OWL-Horst missing %s", name)
		}
	}
	// Dependency graph sanity: scm-eqc feeds the subClassOf rules.
	g := BuildDependencyGraph(rs)
	for _, e := range [][2]string{
		{"scm-eqc", "scm-sco"},
		{"scm-eqc", "cax-sco"},
		{"scm-eqp", "prp-spo1"},
		{"eq-sym-trans", "eq-rep"},
		{"cax-eqc", "cax-eqc"},
	} {
		if !g.HasEdge(e[0], e[1]) {
			t.Errorf("missing edge %s -> %s", e[0], e[1])
		}
	}
}

// TestOWLHorstFixpointViaBaseline runs a combined scenario to fixpoint
// through a local semi-naive loop and checks the expected closure.
func TestOWLHorstFixpointViaBaseline(t *testing.T) {
	input := []rdf.Triple{
		ty(p1, rdf.IDTransitiveProperty),
		rdf.T(a, p1, b), rdf.T(b, p1, c), rdf.T(c, p1, d),
		eqc(a, b), ty(x, a),
		inv(p2, p3), rdf.T(x, p2, y),
		same(y, z),
	}
	st := store.New()
	closure := fixpoint(t, st, OWLHorst(), input)
	for _, want := range []rdf.Triple{
		rdf.T(a, p1, c), rdf.T(a, p1, d), rdf.T(b, p1, d), // prp-trp
		ty(x, b),           // cax-eqc
		sc(a, b), sc(b, a), // scm-eqc
		rdf.T(y, p3, x), // prp-inv
		same(z, y),      // eq-sym
		rdf.T(x, p2, z), // eq-rep on object
		rdf.T(z, p3, x), // composition: inv + eq-rep
	} {
		if !closure.Contains(want) {
			t.Errorf("closure missing %v", want)
		}
	}
}

// fixpoint runs a semi-naive loop directly (avoiding an import cycle with
// the baseline package, which rules does not depend on).
func fixpoint(t *testing.T, st *store.Store, ruleset []Rule, input []rdf.Triple) *store.Store {
	t.Helper()
	_ = context.Background()
	delta := st.AddAll(input)
	for round := 0; len(delta) > 0; round++ {
		if round > 10000 {
			t.Fatal("fixpoint did not converge")
		}
		var out []rdf.Triple
		for _, r := range ruleset {
			r.Apply(st, delta, func(tr rdf.Triple) { out = append(out, tr) })
		}
		delta = st.AddAll(out)
	}
	return st
}
