package rules

import (
	"strings"
	"testing"

	"repro/internal/rdf"
)

// TestRhoDFDependencyGraphMatchesFigure2 checks the edges the paper's
// Figure 2 depicts for the ρdf fragment.
func TestRhoDFDependencyGraphMatchesFigure2(t *testing.T) {
	g := BuildDependencyGraph(RhoDF())

	// Edges named in the paper's Figure 2 discussion.
	mustHave := [][2]string{
		{"scm-sco", "cax-sco"}, // "output of SCM-SCO … can be used as an input for CAX-SCO"
		{"scm-sco", "scm-sco"}, // transitive rules feed themselves
		{"scm-spo", "scm-spo"},
		{"scm-spo", "prp-spo1"}, // sp triples feed the assertion propagation rule
		{"scm-spo", "scm-dom2"},
		{"scm-spo", "scm-rng2"},
		{"scm-dom2", "prp-dom"}, // domain triples feed the domain typing rule
		{"scm-rng2", "prp-rng"},
		{"cax-sco", "cax-sco"}, // type output feeds type input
		// Universal-input rules consume everything:
		{"scm-sco", "prp-spo1"},
		{"cax-sco", "prp-dom"},
		{"prp-dom", "prp-rng"},
		// prp-spo1 produces arbitrary predicates, so it reaches everything:
		{"prp-spo1", "scm-sco"},
		{"prp-spo1", "cax-sco"},
		{"prp-spo1", "prp-spo1"},
	}
	for _, e := range mustHave {
		if !g.HasEdge(e[0], e[1]) {
			t.Errorf("missing edge %s -> %s", e[0], e[1])
		}
	}

	// Edges that must NOT exist: typed output into a rule that does not
	// consume rdf:type.
	mustNotHave := [][2]string{
		{"cax-sco", "scm-sco"},  // type does not feed subClassOf transitivity
		{"prp-dom", "scm-spo"},  // type does not feed subPropertyOf transitivity
		{"scm-sco", "scm-spo"},  // subClassOf does not feed subPropertyOf
		{"scm-dom2", "scm-sco"}, // domain does not feed subClassOf
	}
	for _, e := range mustNotHave {
		if g.HasEdge(e[0], e[1]) {
			t.Errorf("unexpected edge %s -> %s", e[0], e[1])
		}
	}

	universal := g.Universal()
	if len(universal) != 3 {
		t.Fatalf("universal rules = %v, want prp-dom, prp-rng, prp-spo1", universal)
	}
	for _, want := range []string{"prp-dom", "prp-rng", "prp-spo1"} {
		found := false
		for _, u := range universal {
			if u == want {
				found = true
			}
		}
		if !found {
			t.Errorf("universal rules %v missing %s", universal, want)
		}
	}
}

func TestDependencyGraphRDFS(t *testing.T) {
	g := BuildDependencyGraph(RDFS())
	// rdfs8/rdfs10 produce subClassOf, consumed by scm-sco and cax-sco.
	for _, e := range [][2]string{
		{"rdfs8", "scm-sco"},
		{"rdfs10", "cax-sco"},
		{"rdfs6", "scm-spo"},
		{"rdfs12", "prp-spo1"},
		{"rdfs13", "scm-sco"},
		{"rdfs4", "cax-sco"}, // (x type Resource) feeds cax-sco's type input
		{"cax-sco", "rdfs8"}, // type output feeds the class-trigger rules
	} {
		if !g.HasEdge(e[0], e[1]) {
			t.Errorf("missing edge %s -> %s", e[0], e[1])
		}
	}
	if g.HasEdge("rdfs8", "rdfs8") {
		t.Error("rdfs8 produces subClassOf, does not consume it")
	}
}

func TestDependentsOfSortedAndStable(t *testing.T) {
	g := BuildDependencyGraph(RhoDF())
	deps := g.DependentsOf("scm-sco")
	if len(deps) == 0 {
		t.Fatal("scm-sco has no dependents")
	}
	for i := 1; i < len(deps); i++ {
		if deps[i-1] >= deps[i] {
			t.Fatalf("dependents not sorted: %v", deps)
		}
	}
	if g.DependentsOf("unknown") != nil {
		t.Fatal("unknown rule should have nil dependents")
	}
}

func TestEdgesEnumeration(t *testing.T) {
	g := BuildDependencyGraph(RhoDF())
	edges := g.Edges()
	if len(edges) == 0 {
		t.Fatal("no edges")
	}
	seen := make(map[[2]string]bool)
	for _, e := range edges {
		if seen[e] {
			t.Fatalf("duplicate edge %v", e)
		}
		seen[e] = true
		if !g.HasEdge(e[0], e[1]) {
			t.Fatalf("Edges lists %v but HasEdge denies it", e)
		}
	}
}

func TestDOTOutput(t *testing.T) {
	g := BuildDependencyGraph(RhoDF())
	dot := g.DOT()
	for _, want := range []string{
		"digraph rules",
		"cluster_universal",
		`"Universal Input"`,
		`"scm-sco" -> "cax-sco"`,
		`"prp-spo1"`,
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot)
		}
	}
}

func TestDependencyGraphWithNoOutputRule(t *testing.T) {
	// A sink rule that consumes but never produces: no outgoing edges.
	sink := &CustomRule{RuleName: "sink", In: []rdf.ID{rdf.IDType}, Out: nil,
		Fn: func(Source, []rdf.Triple, func(rdf.Triple)) {}}
	g := BuildDependencyGraph([]Rule{CaxSco(), sink})
	if len(g.DependentsOf("sink")) != 0 {
		t.Fatalf("sink has dependents: %v", g.DependentsOf("sink"))
	}
	if !g.HasEdge("cax-sco", "sink") {
		t.Fatal("cax-sco should feed sink (type input)")
	}
}

func TestRulesQuickReference(t *testing.T) {
	// Every rule in both fragments must have a unique, non-empty name.
	for _, frag := range [][]Rule{RhoDF(), RDFS()} {
		seen := map[string]bool{}
		for _, r := range frag {
			if r.Name() == "" {
				t.Fatal("rule with empty name")
			}
			if seen[r.Name()] {
				t.Fatalf("duplicate rule name %s", r.Name())
			}
			seen[r.Name()] = true
		}
	}
}
