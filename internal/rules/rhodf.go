package rules

import (
	"repro/internal/rdf"
)

// This file implements the eight rules of the ρdf fragment (Muñoz, Pérez,
// Gutierrez: "Minimal deductive systems for RDF") exactly as the paper's
// Figure 2 lays them out, using the OWL 2 RL profile rule names:
//
//	scm-sco   (c1 sc c2), (c2 sc c3)   → (c1 sc c3)
//	scm-spo   (p1 sp p2), (p2 sp p3)   → (p1 sp p3)
//	cax-sco   (c1 sc c2), (x type c1)  → (x type c2)
//	prp-spo1  (p1 sp p2), (x p1 y)     → (x p2 y)        [universal input]
//	prp-dom   (p dom c),  (x p y)      → (x type c)      [universal input]
//	prp-rng   (p rng c),  (x p y)      → (y type c)      [universal input]
//	scm-dom2  (p2 dom c), (p1 sp p2)   → (p1 dom c)
//	scm-rng2  (p2 rng c), (p1 sp p2)   → (p1 rng c)
//
// Each rule carries both directions of the production: Apply joins a
// delta forward against a Source, and Supports answers the targeted
// backward question "is this triple derivable in one step from premises
// in the source" — the primitive suspect-local retraction is built on.

// transitiveRule implements (a p b), (b p c) → (a p c) for a fixed
// predicate p; instantiated as scm-sco and scm-spo.
type transitiveRule struct {
	name string
	pred rdf.ID
}

func (r *transitiveRule) Name() string      { return r.name }
func (r *transitiveRule) Inputs() []rdf.ID  { return []rdf.ID{r.pred} }
func (r *transitiveRule) Outputs() []rdf.ID { return []rdf.ID{r.pred} }

func (r *transitiveRule) Apply(src Source, delta []rdf.Triple, emit func(rdf.Triple)) {
	// buf is reused across the delta's probes (append-style readers) so
	// the join does not allocate one slice per triple.
	var buf []rdf.ID
	for _, t := range delta {
		if t.P != r.pred {
			continue
		}
		// delta (a,b) joins source (b,c): derive (a,c).
		buf = src.ObjectsAppend(buf[:0], r.pred, t.O)
		for _, c := range buf {
			emit(rdf.Triple{S: t.S, P: r.pred, O: c})
		}
		// source (z,a) joins delta (a,b): derive (z,b).
		buf = src.SubjectsAppend(buf[:0], r.pred, t.S)
		for _, z := range buf {
			emit(rdf.Triple{S: z, P: r.pred, O: t.O})
		}
	}
}

func (r *transitiveRule) Supports(src Source, t rdf.Triple) bool {
	if t.P != r.pred {
		return false
	}
	// ∃ b: (t.S pred b), (b pred t.O) — a galloping intersection of two
	// sorted extents instead of a Contains probe per candidate.
	return rdf.HasCommonSorted(src.Objects(r.pred, t.S), src.Subjects(r.pred, t.O))
}

// caxSco implements cax-sco (paper Algorithm 1).
type caxSco struct{}

func (caxSco) Name() string      { return "cax-sco" }
func (caxSco) Inputs() []rdf.ID  { return []rdf.ID{rdf.IDSubClassOf, rdf.IDType} }
func (caxSco) Outputs() []rdf.ID { return []rdf.ID{rdf.IDType} }

func (caxSco) Apply(src Source, delta []rdf.Triple, emit func(rdf.Triple)) {
	var buf []rdf.ID
	for _, t := range delta {
		switch t.P {
		case rdf.IDSubClassOf:
			// delta (c1 sc c2) joins source (x type c1): derive (x type c2).
			buf = src.SubjectsAppend(buf[:0], rdf.IDType, t.S)
			for _, x := range buf {
				emit(rdf.Triple{S: x, P: rdf.IDType, O: t.O})
			}
		case rdf.IDType:
			// delta (x type c1) joins source (c1 sc c2): derive (x type c2).
			buf = src.ObjectsAppend(buf[:0], rdf.IDSubClassOf, t.O)
			for _, c2 := range buf {
				emit(rdf.Triple{S: t.S, P: rdf.IDType, O: c2})
			}
		}
	}
}

func (caxSco) Supports(src Source, t rdf.Triple) bool {
	if t.P != rdf.IDType {
		return false
	}
	// ∃ c1: (t.S type c1), (c1 sc t.O).
	return rdf.HasCommonSorted(src.Objects(rdf.IDType, t.S), src.Subjects(rdf.IDSubClassOf, t.O))
}

// prpSpo1 implements prp-spo1. It has universal input: any triple (x p y)
// can be its second premise.
type prpSpo1 struct{}

func (prpSpo1) Name() string      { return "prp-spo1" }
func (prpSpo1) Inputs() []rdf.ID  { return nil }
func (prpSpo1) Outputs() []rdf.ID { return []rdf.ID{AnyPredicate} }

func (prpSpo1) Apply(src Source, delta []rdf.Triple, emit func(rdf.Triple)) {
	var buf []rdf.ID
	for _, t := range delta {
		if t.P == rdf.IDSubPropertyOf {
			// delta (p1 sp p2) joins source extent of p1: derive (x p2 y).
			p2 := t.O
			src.ForEachWithPredicate(t.S, func(x, y rdf.ID) bool {
				emit(rdf.Triple{S: x, P: p2, O: y})
				return true
			})
		}
		// delta (x p y) joins source (p sp p2): derive (x p2 y).
		// This branch also applies when t.P == sp (sp itself may have
		// super-properties).
		buf = src.ObjectsAppend(buf[:0], rdf.IDSubPropertyOf, t.P)
		for _, p2 := range buf {
			if p2 != t.P { // (p sp p) would only re-derive the input
				emit(rdf.Triple{S: t.S, P: p2, O: t.O})
			}
		}
	}
}

func (prpSpo1) Supports(src Source, t rdf.Triple) bool {
	// ∃ p1: (p1 sp t.P), (t.S p1 t.O). p1 == t.P would make the premise
	// the conclusion itself — a self-derivation, never a real support.
	for _, p1 := range src.Subjects(rdf.IDSubPropertyOf, t.P) {
		if p1 != t.P && src.Contains(rdf.Triple{S: t.S, P: p1, O: t.O}) {
			return true
		}
	}
	return false
}

// prpDomRng implements prp-dom and prp-rng, parameterised by the schema
// predicate (domain or range) and which end of the assertion gets typed.
type prpDomRng struct {
	name   string
	schema rdf.ID // rdf.IDDomain or rdf.IDRange
	object bool   // false: type the subject (dom); true: type the object (rng)
}

func (r *prpDomRng) Name() string      { return r.name }
func (r *prpDomRng) Inputs() []rdf.ID  { return nil }
func (r *prpDomRng) Outputs() []rdf.ID { return []rdf.ID{rdf.IDType} }

func (r *prpDomRng) Apply(src Source, delta []rdf.Triple, emit func(rdf.Triple)) {
	var buf []rdf.ID
	for _, t := range delta {
		if t.P == r.schema {
			// delta (p dom c) joins the source extent of p.
			c := t.O
			src.ForEachWithPredicate(t.S, func(x, y rdf.ID) bool {
				target := x
				if r.object {
					target = y
				}
				if !target.IsLiteral() {
					emit(rdf.Triple{S: target, P: rdf.IDType, O: c})
				}
				return true
			})
		}
		// delta (x p y) joins source (p dom c).
		buf = src.ObjectsAppend(buf[:0], r.schema, t.P)
		for _, c := range buf {
			target := t.S
			if r.object {
				target = t.O
			}
			if !target.IsLiteral() {
				emit(rdf.Triple{S: target, P: rdf.IDType, O: c})
			}
		}
	}
}

func (r *prpDomRng) Supports(src Source, t rdf.Triple) bool {
	if t.P != rdf.IDType || t.S.IsLiteral() {
		return false
	}
	var buf []rdf.ID
	// ∃ p: (p schema t.O) and an extent triple of p with t.S at the
	// typed end: (t.S p y) for dom, (x p t.S) for rng.
	for _, p := range src.Subjects(r.schema, t.O) {
		if r.object {
			buf = src.SubjectsAppend(buf[:0], p, t.S)
		} else {
			buf = src.ObjectsAppend(buf[:0], p, t.S)
		}
		if len(buf) > 0 {
			return true
		}
	}
	return false
}

// scmDomRng2 implements scm-dom2 / scm-rng2:
// (p2 schema c), (p1 sp p2) → (p1 schema c).
type scmDomRng2 struct {
	name   string
	schema rdf.ID
}

func (r *scmDomRng2) Name() string      { return r.name }
func (r *scmDomRng2) Inputs() []rdf.ID  { return []rdf.ID{r.schema, rdf.IDSubPropertyOf} }
func (r *scmDomRng2) Outputs() []rdf.ID { return []rdf.ID{r.schema} }

func (r *scmDomRng2) Apply(src Source, delta []rdf.Triple, emit func(rdf.Triple)) {
	var buf []rdf.ID
	for _, t := range delta {
		switch t.P {
		case r.schema:
			// delta (p2 schema c) joins source (p1 sp p2).
			buf = src.SubjectsAppend(buf[:0], rdf.IDSubPropertyOf, t.S)
			for _, p1 := range buf {
				emit(rdf.Triple{S: p1, P: r.schema, O: t.O})
			}
		case rdf.IDSubPropertyOf:
			// delta (p1 sp p2) joins source (p2 schema c).
			buf = src.ObjectsAppend(buf[:0], r.schema, t.O)
			for _, c := range buf {
				emit(rdf.Triple{S: t.S, P: r.schema, O: c})
			}
		}
	}
}

func (r *scmDomRng2) Supports(src Source, t rdf.Triple) bool {
	if t.P != r.schema {
		return false
	}
	// ∃ p2: (t.S sp p2), (p2 schema t.O).
	return rdf.HasCommonSorted(src.Objects(rdf.IDSubPropertyOf, t.S), src.Subjects(r.schema, t.O))
}

// Constructors for the individual ρdf rules. Exposed so custom fragments
// can be assembled rule by rule.

// ScmSco returns the subClassOf transitivity rule.
func ScmSco() Rule { return &transitiveRule{name: "scm-sco", pred: rdf.IDSubClassOf} }

// ScmSpo returns the subPropertyOf transitivity rule.
func ScmSpo() Rule { return &transitiveRule{name: "scm-spo", pred: rdf.IDSubPropertyOf} }

// CaxSco returns the class-membership propagation rule.
func CaxSco() Rule { return caxSco{} }

// PrpSpo1 returns the property-assertion propagation rule.
func PrpSpo1() Rule { return prpSpo1{} }

// PrpDom returns the domain typing rule.
func PrpDom() Rule { return &prpDomRng{name: "prp-dom", schema: rdf.IDDomain, object: false} }

// PrpRng returns the range typing rule.
func PrpRng() Rule { return &prpDomRng{name: "prp-rng", schema: rdf.IDRange, object: true} }

// ScmDom2 returns the domain propagation rule over subPropertyOf.
func ScmDom2() Rule { return &scmDomRng2{name: "scm-dom2", schema: rdf.IDDomain} }

// ScmRng2 returns the range propagation rule over subPropertyOf.
func ScmRng2() Rule { return &scmDomRng2{name: "scm-rng2", schema: rdf.IDRange} }

// RhoDF returns the ρdf fragment: the eight rules of Figure 2.
func RhoDF() []Rule {
	return []Rule{
		ScmSco(),
		ScmSpo(),
		CaxSco(),
		PrpSpo1(),
		PrpDom(),
		PrpRng(),
		ScmDom2(),
		ScmRng2(),
	}
}
