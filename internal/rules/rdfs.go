package rules

import (
	"repro/internal/rdf"
)

// This file implements the RDFS entailment rules beyond ρdf, following the
// RDF Semantics rule names (rdfs4a, rdfs4b, rdfs6, rdfs8, rdfs10, rdfs12,
// rdfs13). The ρdf rules already cover rdfs2 (prp-dom), rdfs3 (prp-rng),
// rdfs5 (scm-spo), rdfs7 (prp-spo1), rdfs9 (cax-sco) and rdfs11 (scm-sco).

// classTriggerRule implements the schema-vocabulary typing rules of RDFS:
// when a delta triple (x type K) arrives for the trigger class K, emit
// (x outPred outObj), where outObj == rdf.Any means "x itself".
type classTriggerRule struct {
	name    string
	trigger rdf.ID // class K in (x type K)
	outPred rdf.ID
	outObj  rdf.ID // rdf.Any → reflexive (object = subject)
}

func (r *classTriggerRule) Name() string      { return r.name }
func (r *classTriggerRule) Inputs() []rdf.ID  { return []rdf.ID{rdf.IDType} }
func (r *classTriggerRule) Outputs() []rdf.ID { return []rdf.ID{r.outPred} }

func (r *classTriggerRule) Apply(_ Source, delta []rdf.Triple, emit func(rdf.Triple)) {
	for _, t := range delta {
		if t.P != rdf.IDType || t.O != r.trigger {
			continue
		}
		obj := r.outObj
		if obj == rdf.Any {
			obj = t.S
		}
		emit(rdf.Triple{S: t.S, P: r.outPred, O: obj})
	}
}

func (r *classTriggerRule) Supports(src Source, t rdf.Triple) bool {
	if t.P != r.outPred {
		return false
	}
	if r.outObj == rdf.Any {
		if t.O != t.S {
			return false
		}
	} else if t.O != r.outObj {
		return false
	}
	return src.Contains(rdf.Triple{S: t.S, P: rdf.IDType, O: r.trigger})
}

// resourceTypingRule implements rdfs4a and rdfs4b together:
//
//	rdfs4a  (x p y) → (x type Resource)
//	rdfs4b  (x p y) → (y type Resource)   [y not a literal]
//
// It has universal input and is the rule responsible for the bulk of the
// RDFS closure on instance-heavy ontologies (see EXPERIMENTS.md).
type resourceTypingRule struct{}

func (resourceTypingRule) Name() string      { return "rdfs4" }
func (resourceTypingRule) Inputs() []rdf.ID  { return nil }
func (resourceTypingRule) Outputs() []rdf.ID { return []rdf.ID{rdf.IDType} }

func (resourceTypingRule) Apply(_ Source, delta []rdf.Triple, emit func(rdf.Triple)) {
	for _, t := range delta {
		emit(rdf.Triple{S: t.S, P: rdf.IDType, O: rdf.IDResource})
		if !t.O.IsLiteral() {
			emit(rdf.Triple{S: t.O, P: rdf.IDType, O: rdf.IDResource})
		}
	}
}

func (resourceTypingRule) Supports(src Source, t rdf.Triple) bool {
	if t.P != rdf.IDType || t.O != rdf.IDResource {
		return false
	}
	// Supported while t.S occurs anywhere in src, as a subject or as a
	// (non-literal) object. The predicate walk is the price of the
	// rule's universal input; predicates are schema-sized in practice.
	var buf []rdf.ID
	for _, p := range src.Predicates() {
		if buf = src.ObjectsAppend(buf[:0], p, t.S); len(buf) > 0 {
			return true
		}
		if !t.S.IsLiteral() {
			if buf = src.SubjectsAppend(buf[:0], p, t.S); len(buf) > 0 {
				return true
			}
		}
	}
	return false
}

// Constructors for the individual RDFS rules.

// Rdfs4 returns the combined rdfs4a/rdfs4b resource-typing rule.
func Rdfs4() Rule { return resourceTypingRule{} }

// Rdfs6 returns (p type Property) → (p sp p).
func Rdfs6() Rule {
	return &classTriggerRule{name: "rdfs6", trigger: rdf.IDProperty,
		outPred: rdf.IDSubPropertyOf, outObj: rdf.Any}
}

// Rdfs8 returns (c type Class) → (c sc Resource).
func Rdfs8() Rule {
	return &classTriggerRule{name: "rdfs8", trigger: rdf.IDClass,
		outPred: rdf.IDSubClassOf, outObj: rdf.IDResource}
}

// Rdfs10 returns (c type Class) → (c sc c).
func Rdfs10() Rule {
	return &classTriggerRule{name: "rdfs10", trigger: rdf.IDClass,
		outPred: rdf.IDSubClassOf, outObj: rdf.Any}
}

// Rdfs12 returns (p type ContainerMembershipProperty) → (p sp member).
func Rdfs12() Rule {
	return &classTriggerRule{name: "rdfs12", trigger: rdf.IDContainerMembershipProp,
		outPred: rdf.IDSubPropertyOf, outObj: rdf.IDMember}
}

// Rdfs13 returns (d type Datatype) → (d sc Literal).
func Rdfs13() Rule {
	return &classTriggerRule{name: "rdfs13", trigger: rdf.IDDatatype,
		outPred: rdf.IDSubClassOf, outObj: rdf.IDLiteralClass}
}

// RDFSOptions tunes the RDFS ruleset composition.
type RDFSOptions struct {
	// ResourceTyping enables rdfs4a/rdfs4b. Production RDFS stores (and
	// the ruleset OWLIM-SE uses in the paper's Table 1) include it; it
	// accounts for most of the RDFS closure on instance data.
	ResourceTyping bool
}

// DefaultRDFSOptions matches the ruleset used for the paper's RDFS column.
func DefaultRDFSOptions() RDFSOptions {
	return RDFSOptions{ResourceTyping: true}
}

// RDFS returns the RDFS fragment with default options.
func RDFS() []Rule { return RDFSWith(DefaultRDFSOptions()) }

// RDFSWith returns the RDFS fragment: all of ρdf plus the RDFS schema
// rules, optionally including resource typing.
func RDFSWith(opts RDFSOptions) []Rule {
	out := RhoDF()
	out = append(out, Rdfs6(), Rdfs8(), Rdfs10(), Rdfs12(), Rdfs13())
	if opts.ResourceTyping {
		out = append(out, Rdfs4())
	}
	return out
}
