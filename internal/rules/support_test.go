package rules_test

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/baseline"
	"repro/internal/rdf"
	"repro/internal/rules"
	"repro/internal/store"
)

// maskOne is a Source with exactly one triple hidden: the shape a
// backward support check always sees (the checked suspect is dead, so
// it must never serve as its own premise).
type maskOne struct {
	st   *store.Store
	dead rdf.Triple
}

func (m *maskOne) Contains(t rdf.Triple) bool { return t != m.dead && m.st.Contains(t) }

func (m *maskOne) ObjectsAppend(dst []rdf.ID, p, s rdf.ID) []rdf.ID {
	n := len(dst)
	dst = m.st.ObjectsAppend(dst, p, s)
	kept := dst[:n]
	for _, o := range dst[n:] {
		if (rdf.Triple{S: s, P: p, O: o}) != m.dead {
			kept = append(kept, o)
		}
	}
	return kept
}

func (m *maskOne) Objects(p, s rdf.ID) []rdf.ID { return m.ObjectsAppend(nil, p, s) }

func (m *maskOne) SubjectsAppend(dst []rdf.ID, p, o rdf.ID) []rdf.ID {
	n := len(dst)
	dst = m.st.SubjectsAppend(dst, p, o)
	kept := dst[:n]
	for _, s := range dst[n:] {
		if (rdf.Triple{S: s, P: p, O: o}) != m.dead {
			kept = append(kept, s)
		}
	}
	return kept
}

func (m *maskOne) Subjects(p, o rdf.ID) []rdf.ID { return m.SubjectsAppend(nil, p, o) }

func (m *maskOne) ForEachWithPredicate(p rdf.ID, f func(s, o rdf.ID) bool) {
	m.st.ForEachWithPredicate(p, func(s, o rdf.ID) bool {
		if (rdf.Triple{S: s, P: p, O: o}) == m.dead {
			return true
		}
		return f(s, o)
	})
}

func (m *maskOne) ForEach(f func(rdf.Triple) bool) {
	m.st.ForEach(func(t rdf.Triple) bool {
		if t == m.dead {
			return true
		}
		return f(t)
	})
}

func (m *maskOne) Predicates() []rdf.ID { return m.st.Predicates() }

// oneStepDerives brute-forces the ground truth: does r's forward Apply,
// run over every triple of src as the delta, emit t?
func oneStepDerives(r rules.Rule, src rules.Source, t rdf.Triple) bool {
	var all []rdf.Triple
	src.ForEach(func(u rdf.Triple) bool {
		all = append(all, u)
		return true
	})
	found := false
	r.Apply(src, all, func(u rdf.Triple) {
		if u == t {
			found = true
		}
	})
	return found
}

// randomInput builds a small random ontology exercising every premise
// shape of the three rule sets: subclass/subproperty schema, typing,
// domain/range, plain property assertions, and the OWL-Horst vocabulary
// (symmetric/transitive/inverse/equivalence/sameAs).
func randomInput(rng *rand.Rand) []rdf.Triple {
	id := func(i int) rdf.ID { return rdf.FirstCustomID + rdf.ID(i) }
	cls := func() rdf.ID { return id(rng.Intn(4)) }
	prop := func() rdf.ID { return id(10 + rng.Intn(3)) }
	inst := func() rdf.ID { return id(100 + rng.Intn(5)) }
	seen := map[rdf.Triple]bool{}
	var out []rdf.Triple
	add := func(t rdf.Triple) {
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	n := rng.Intn(14) + 6
	for i := 0; i < n; i++ {
		switch rng.Intn(12) {
		case 0:
			add(rdf.T(cls(), rdf.IDSubClassOf, cls()))
		case 1:
			add(rdf.T(prop(), rdf.IDSubPropertyOf, prop()))
		case 2:
			add(rdf.T(inst(), rdf.IDType, cls()))
		case 3:
			add(rdf.T(prop(), rdf.IDDomain, cls()))
		case 4:
			add(rdf.T(prop(), rdf.IDRange, cls()))
		case 5:
			add(rdf.T(inst(), prop(), inst()))
		case 6:
			add(rdf.T(prop(), rdf.IDType, rdf.IDSymmetricProperty))
		case 7:
			add(rdf.T(prop(), rdf.IDType, rdf.IDTransitiveProperty))
		case 8:
			add(rdf.T(prop(), rdf.IDInverseOf, prop()))
		case 9:
			add(rdf.T(cls(), rdf.IDEquivalentClass, cls()))
		case 10:
			add(rdf.T(prop(), rdf.IDEquivalentProperty, prop()))
		case 11:
			add(rdf.T(inst(), rdf.IDSameAs, inst()))
		}
	}
	return out
}

// TestSupportsMatchesOneStepDerivability is the exactness property the
// suspect-local retraction path rests on: for every rule of every
// built-in rule set, Supports(src, t) answers exactly "does forward
// Apply derive t from src" — with t itself hidden from src, as during a
// real support check. Checked for every triple of the closure of random
// ontologies.
func TestSupportsMatchesOneStepDerivability(t *testing.T) {
	rulesets := map[string][]rules.Rule{
		"rhodf":     rules.RhoDF(),
		"rdfs":      rules.RDFS(),
		"owl-horst": rules.OWLHorst(),
	}
	for name, ruleset := range rulesets {
		t.Run(name, func(t *testing.T) {
			if !rules.AllSupport(ruleset) {
				t.Fatalf("built-in ruleset %s has rules without a support face", name)
			}
			for seed := int64(0); seed < 40; seed++ {
				rng := rand.New(rand.NewSource(seed))
				input := randomInput(rng)
				closed, _, err := baseline.Closure(context.Background(), ruleset, input)
				if err != nil {
					t.Fatal(err)
				}
				var all []rdf.Triple
				closed.ForEach(func(u rdf.Triple) bool {
					all = append(all, u)
					return true
				})
				for _, tr := range all {
					src := &maskOne{st: closed, dead: tr}
					for _, r := range ruleset {
						sup, ok := r.(rules.Supporter)
						if !ok {
							t.Fatalf("rule %s: no Supports", r.Name())
						}
						got := sup.Supports(src, tr)
						want := oneStepDerives(r, src, tr)
						if got != want {
							t.Fatalf("seed %d rule %s triple %v: Supports=%v, one-step derivability=%v",
								seed, r.Name(), tr, got, want)
						}
					}
				}
			}
		})
	}
}

// TestCustomRuleSupportGate checks the capability gate: a CustomRule
// without a SupportsFn disqualifies its ruleset from the suspect-local
// path, one with it qualifies.
func TestCustomRuleSupportGate(t *testing.T) {
	plain := &rules.CustomRule{RuleName: "plain"}
	if rules.CanSupport(plain) {
		t.Fatal("CustomRule without SupportsFn claims support")
	}
	if rules.AllSupport(append(rules.RhoDF(), plain)) {
		t.Fatal("ruleset with unsupporting rule passes AllSupport")
	}
	withFn := &rules.CustomRule{
		RuleName:   "with-fn",
		SupportsFn: func(rules.Source, rdf.Triple) bool { return false },
	}
	if !rules.CanSupport(withFn) {
		t.Fatal("CustomRule with SupportsFn not recognised")
	}
	if !rules.AllSupport(append(rules.RhoDF(), withFn)) {
		t.Fatal("fully-supporting ruleset fails AllSupport")
	}
}
