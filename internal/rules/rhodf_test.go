package rules

import (
	"sort"
	"testing"

	"repro/internal/rdf"
	"repro/internal/store"
)

// applyRule loads base triples into a store, then applies the rule with
// the given delta (after inserting the delta into the store, matching the
// engine's store-before-buffer ordering) and returns the emitted triples.
func applyRule(r Rule, base, delta []rdf.Triple) []rdf.Triple {
	st := store.New()
	for _, t := range base {
		st.Add(t)
	}
	for _, t := range delta {
		st.Add(t)
	}
	var out []rdf.Triple
	r.Apply(st, delta, func(t rdf.Triple) { out = append(out, t) })
	return dedup(out)
}

func dedup(ts []rdf.Triple) []rdf.Triple {
	seen := make(map[rdf.Triple]bool, len(ts))
	var out []rdf.Triple
	for _, t := range ts {
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	sortTriples(out)
	return out
}

func sortTriples(ts []rdf.Triple) {
	sort.Slice(ts, func(i, j int) bool {
		if ts[i].S != ts[j].S {
			return ts[i].S < ts[j].S
		}
		if ts[i].P != ts[j].P {
			return ts[i].P < ts[j].P
		}
		return ts[i].O < ts[j].O
	})
}

func wantTriples(t *testing.T, got, want []rdf.Triple) {
	t.Helper()
	want = dedup(want)
	if len(got) != len(want) {
		t.Fatalf("derived %d triples %v, want %d %v", len(got), got, len(want), want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("derived %v, want %v", got, want)
		}
	}
}

// Convenient fresh IDs outside the well-known range.
const (
	a rdf.ID = rdf.FirstCustomID + iota
	b
	c
	d
	p1
	p2
	p3
	x
	y
	z
)

func sc(s, o rdf.ID) rdf.Triple  { return rdf.T(s, rdf.IDSubClassOf, o) }
func sp(s, o rdf.ID) rdf.Triple  { return rdf.T(s, rdf.IDSubPropertyOf, o) }
func ty(s, o rdf.ID) rdf.Triple  { return rdf.T(s, rdf.IDType, o) }
func dom(s, o rdf.ID) rdf.Triple { return rdf.T(s, rdf.IDDomain, o) }
func rng(s, o rdf.ID) rdf.Triple { return rdf.T(s, rdf.IDRange, o) }

func TestScmScoTransitivityBothDirections(t *testing.T) {
	// Store has (a sc b); delta brings (b sc c): expect (a sc c).
	got := applyRule(ScmSco(), []rdf.Triple{sc(a, b)}, []rdf.Triple{sc(b, c)})
	wantTriples(t, got, []rdf.Triple{sc(a, c)})

	// Reverse roles: store (b sc c), delta (a sc b): expect (a sc c).
	got = applyRule(ScmSco(), []rdf.Triple{sc(b, c)}, []rdf.Triple{sc(a, b)})
	wantTriples(t, got, []rdf.Triple{sc(a, c)})
}

func TestScmScoDeltaOnlyChain(t *testing.T) {
	// Both premises arrive in the same delta; the engine guarantees they
	// are in the store, so the join still fires.
	got := applyRule(ScmSco(), nil, []rdf.Triple{sc(a, b), sc(b, c)})
	wantTriples(t, got, []rdf.Triple{sc(a, c)})
}

func TestScmScoCycleTerminates(t *testing.T) {
	got := applyRule(ScmSco(), []rdf.Triple{sc(a, b)}, []rdf.Triple{sc(b, a)})
	wantTriples(t, got, []rdf.Triple{sc(a, a), sc(b, b)})
}

func TestScmScoIgnoresOtherPredicates(t *testing.T) {
	got := applyRule(ScmSco(), []rdf.Triple{sc(a, b)}, []rdf.Triple{ty(x, a)})
	if len(got) != 0 {
		t.Fatalf("scm-sco fired on rdf:type delta: %v", got)
	}
}

func TestScmSpoTransitivity(t *testing.T) {
	got := applyRule(ScmSpo(), []rdf.Triple{sp(p1, p2)}, []rdf.Triple{sp(p2, p3)})
	wantTriples(t, got, []rdf.Triple{sp(p1, p3)})
}

func TestCaxScoBothDirections(t *testing.T) {
	// Algorithm 1 from the paper, both join directions.
	got := applyRule(CaxSco(), []rdf.Triple{ty(x, a)}, []rdf.Triple{sc(a, b)})
	wantTriples(t, got, []rdf.Triple{ty(x, b)})

	got = applyRule(CaxSco(), []rdf.Triple{sc(a, b)}, []rdf.Triple{ty(x, a)})
	wantTriples(t, got, []rdf.Triple{ty(x, b)})
}

func TestCaxScoNoMatch(t *testing.T) {
	// Type assertion for a class with no superclass: nothing derived.
	got := applyRule(CaxSco(), []rdf.Triple{sc(a, b)}, []rdf.Triple{ty(x, c)})
	if len(got) != 0 {
		t.Fatalf("cax-sco derived %v from unrelated class", got)
	}
}

func TestCaxScoFanOut(t *testing.T) {
	// One subclass triple arriving, many instances present.
	base := []rdf.Triple{ty(x, a), ty(y, a), ty(z, a)}
	got := applyRule(CaxSco(), base, []rdf.Triple{sc(a, b)})
	wantTriples(t, got, []rdf.Triple{ty(x, b), ty(y, b), ty(z, b)})
}

func TestPrpSpo1SchemaDeltaDirection(t *testing.T) {
	// Store holds assertions with p1; delta brings (p1 sp p2).
	base := []rdf.Triple{rdf.T(x, p1, y), rdf.T(y, p1, z)}
	got := applyRule(PrpSpo1(), base, []rdf.Triple{sp(p1, p2)})
	wantTriples(t, got, []rdf.Triple{rdf.T(x, p2, y), rdf.T(y, p2, z)})
}

func TestPrpSpo1AssertionDeltaDirection(t *testing.T) {
	// Store holds the schema; delta brings an assertion.
	got := applyRule(PrpSpo1(), []rdf.Triple{sp(p1, p2)}, []rdf.Triple{rdf.T(x, p1, y)})
	wantTriples(t, got, []rdf.Triple{rdf.T(x, p2, y)})
}

func TestPrpSpo1ChainedSuperProperties(t *testing.T) {
	// p1 sp p2 and p1 sp p3 both present: both fire.
	got := applyRule(PrpSpo1(), []rdf.Triple{sp(p1, p2), sp(p1, p3)}, []rdf.Triple{rdf.T(x, p1, y)})
	wantTriples(t, got, []rdf.Triple{rdf.T(x, p2, y), rdf.T(x, p3, y)})
}

func TestPrpSpo1ReflexiveSuperPropertySkipped(t *testing.T) {
	got := applyRule(PrpSpo1(), []rdf.Triple{sp(p1, p1)}, []rdf.Triple{rdf.T(x, p1, y)})
	if len(got) != 0 {
		t.Fatalf("prp-spo1 re-derived its input through (p sp p): %v", got)
	}
}

func TestPrpSpo1SubPropertyOfItselfHasSuperProperty(t *testing.T) {
	// subPropertyOf declared as a subproperty of another property: the
	// delta (p1 sp p2) must also be treated as a plain assertion.
	superOfSp := p3
	got := applyRule(PrpSpo1(),
		[]rdf.Triple{sp(rdf.IDSubPropertyOf, superOfSp)},
		[]rdf.Triple{sp(p1, p2)})
	// Two derivations: (x p2 y) has no extent yet; the sp-as-assertion
	// branch derives (p1 superOfSp p2). The schema branch replays the p1
	// extent (empty).
	wantTriples(t, got, []rdf.Triple{rdf.T(p1, superOfSp, p2)})
}

func TestPrpDomBothDirections(t *testing.T) {
	got := applyRule(PrpDom(), []rdf.Triple{rdf.T(x, p1, y)}, []rdf.Triple{dom(p1, c)})
	wantTriples(t, got, []rdf.Triple{ty(x, c)})

	got = applyRule(PrpDom(), []rdf.Triple{dom(p1, c)}, []rdf.Triple{rdf.T(x, p1, y)})
	wantTriples(t, got, []rdf.Triple{ty(x, c)})
}

func TestPrpRngBothDirections(t *testing.T) {
	got := applyRule(PrpRng(), []rdf.Triple{rdf.T(x, p1, y)}, []rdf.Triple{rng(p1, c)})
	wantTriples(t, got, []rdf.Triple{ty(y, c)})

	got = applyRule(PrpRng(), []rdf.Triple{rng(p1, c)}, []rdf.Triple{rdf.T(x, p1, y)})
	wantTriples(t, got, []rdf.Triple{ty(y, c)})
}

func TestPrpRngSkipsLiteralObjects(t *testing.T) {
	lit := rdf.NewDictionary().Encode(rdf.NewLiteral("v"))
	got := applyRule(PrpRng(), []rdf.Triple{rng(p1, c)}, []rdf.Triple{rdf.T(x, p1, lit)})
	if len(got) != 0 {
		t.Fatalf("prp-rng typed a literal: %v", got)
	}
	// Both directions.
	got = applyRule(PrpRng(), []rdf.Triple{rdf.T(x, p1, lit)}, []rdf.Triple{rng(p1, c)})
	if len(got) != 0 {
		t.Fatalf("prp-rng typed a literal via schema delta: %v", got)
	}
}

func TestScmDom2BothDirections(t *testing.T) {
	// (p2 dom c), (p1 sp p2) → (p1 dom c)
	got := applyRule(ScmDom2(), []rdf.Triple{sp(p1, p2)}, []rdf.Triple{dom(p2, c)})
	wantTriples(t, got, []rdf.Triple{dom(p1, c)})

	got = applyRule(ScmDom2(), []rdf.Triple{dom(p2, c)}, []rdf.Triple{sp(p1, p2)})
	wantTriples(t, got, []rdf.Triple{dom(p1, c)})
}

func TestScmRng2BothDirections(t *testing.T) {
	got := applyRule(ScmRng2(), []rdf.Triple{sp(p1, p2)}, []rdf.Triple{rng(p2, c)})
	wantTriples(t, got, []rdf.Triple{rng(p1, c)})

	got = applyRule(ScmRng2(), []rdf.Triple{rng(p2, c)}, []rdf.Triple{sp(p1, p2)})
	wantTriples(t, got, []rdf.Triple{rng(p1, c)})
}

func TestRhoDFRuleSetComposition(t *testing.T) {
	rs := RhoDF()
	if len(rs) != 8 {
		t.Fatalf("ρdf has %d rules, want 8", len(rs))
	}
	want := []string{"scm-sco", "scm-spo", "cax-sco", "prp-spo1", "prp-dom", "prp-rng", "scm-dom2", "scm-rng2"}
	got := Names(rs)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names = %v, want %v", got, want)
		}
	}
	if ByName(rs, "cax-sco") == nil {
		t.Fatal("ByName failed to find cax-sco")
	}
	if ByName(rs, "nope") != nil {
		t.Fatal("ByName found a non-existent rule")
	}
}

func TestRuleSignatures(t *testing.T) {
	cases := []struct {
		rule          Rule
		wantUniversal bool
		wantIn        []rdf.ID
		wantOut       []rdf.ID
	}{
		{ScmSco(), false, []rdf.ID{rdf.IDSubClassOf}, []rdf.ID{rdf.IDSubClassOf}},
		{ScmSpo(), false, []rdf.ID{rdf.IDSubPropertyOf}, []rdf.ID{rdf.IDSubPropertyOf}},
		{CaxSco(), false, []rdf.ID{rdf.IDSubClassOf, rdf.IDType}, []rdf.ID{rdf.IDType}},
		{PrpSpo1(), true, nil, []rdf.ID{AnyPredicate}},
		{PrpDom(), true, nil, []rdf.ID{rdf.IDType}},
		{PrpRng(), true, nil, []rdf.ID{rdf.IDType}},
		{ScmDom2(), false, []rdf.ID{rdf.IDDomain, rdf.IDSubPropertyOf}, []rdf.ID{rdf.IDDomain}},
		{ScmRng2(), false, []rdf.ID{rdf.IDRange, rdf.IDSubPropertyOf}, []rdf.ID{rdf.IDRange}},
	}
	for _, cse := range cases {
		in := cse.rule.Inputs()
		if (in == nil) != cse.wantUniversal {
			t.Errorf("%s: universal = %v, want %v", cse.rule.Name(), in == nil, cse.wantUniversal)
		}
		if !cse.wantUniversal {
			if len(in) != len(cse.wantIn) {
				t.Errorf("%s: Inputs = %v, want %v", cse.rule.Name(), in, cse.wantIn)
			} else {
				for i := range in {
					if in[i] != cse.wantIn[i] {
						t.Errorf("%s: Inputs = %v, want %v", cse.rule.Name(), in, cse.wantIn)
					}
				}
			}
		}
		out := cse.rule.Outputs()
		if len(out) != len(cse.wantOut) {
			t.Errorf("%s: Outputs = %v, want %v", cse.rule.Name(), out, cse.wantOut)
			continue
		}
		for i := range out {
			if out[i] != cse.wantOut[i] {
				t.Errorf("%s: Outputs = %v, want %v", cse.rule.Name(), out, cse.wantOut)
			}
		}
	}
}
