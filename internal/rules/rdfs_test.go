package rules

import (
	"testing"

	"repro/internal/rdf"
)

func TestRdfs6PropertyReflexiveSubProperty(t *testing.T) {
	got := applyRule(Rdfs6(), nil, []rdf.Triple{ty(p1, rdf.IDProperty)})
	wantTriples(t, got, []rdf.Triple{sp(p1, p1)})
}

func TestRdfs8ClassSubClassOfResource(t *testing.T) {
	got := applyRule(Rdfs8(), nil, []rdf.Triple{ty(a, rdf.IDClass)})
	wantTriples(t, got, []rdf.Triple{sc(a, rdf.IDResource)})
}

func TestRdfs10ClassReflexiveSubClass(t *testing.T) {
	got := applyRule(Rdfs10(), nil, []rdf.Triple{ty(a, rdf.IDClass)})
	wantTriples(t, got, []rdf.Triple{sc(a, a)})
}

func TestRdfs12ContainerMembership(t *testing.T) {
	got := applyRule(Rdfs12(), nil, []rdf.Triple{ty(p1, rdf.IDContainerMembershipProp)})
	wantTriples(t, got, []rdf.Triple{sp(p1, rdf.IDMember)})
}

func TestRdfs13DatatypeSubClassOfLiteral(t *testing.T) {
	got := applyRule(Rdfs13(), nil, []rdf.Triple{ty(a, rdf.IDDatatype)})
	wantTriples(t, got, []rdf.Triple{sc(a, rdf.IDLiteralClass)})
}

func TestClassTriggerRulesIgnoreOtherClasses(t *testing.T) {
	for _, r := range []Rule{Rdfs6(), Rdfs8(), Rdfs10(), Rdfs12(), Rdfs13()} {
		got := applyRule(r, nil, []rdf.Triple{ty(x, a)}) // a is not a trigger class
		if len(got) != 0 {
			t.Errorf("%s fired on unrelated class: %v", r.Name(), got)
		}
		got = applyRule(r, nil, []rdf.Triple{sc(a, b)}) // not a type triple
		if len(got) != 0 {
			t.Errorf("%s fired on non-type triple: %v", r.Name(), got)
		}
	}
}

func TestRdfs4TypesBothEnds(t *testing.T) {
	got := applyRule(Rdfs4(), nil, []rdf.Triple{rdf.T(x, p1, y)})
	wantTriples(t, got, []rdf.Triple{
		ty(x, rdf.IDResource),
		ty(y, rdf.IDResource),
	})
}

func TestRdfs4SkipsLiteralObjects(t *testing.T) {
	lit := rdf.NewDictionary().Encode(rdf.NewLiteral("v"))
	got := applyRule(Rdfs4(), nil, []rdf.Triple{rdf.T(x, p1, lit)})
	wantTriples(t, got, []rdf.Triple{ty(x, rdf.IDResource)})
}

func TestRDFSComposition(t *testing.T) {
	rs := RDFS()
	if len(rs) != 14 {
		t.Fatalf("RDFS has %d rules, want 14 (8 ρdf + 5 schema + rdfs4)", len(rs))
	}
	for _, name := range []string{"scm-sco", "cax-sco", "rdfs6", "rdfs8", "rdfs10", "rdfs12", "rdfs13", "rdfs4"} {
		if ByName(rs, name) == nil {
			t.Errorf("RDFS missing rule %s", name)
		}
	}
	noRT := RDFSWith(RDFSOptions{ResourceTyping: false})
	if ByName(noRT, "rdfs4") != nil {
		t.Error("ResourceTyping=false still includes rdfs4")
	}
	if len(noRT) != 13 {
		t.Errorf("RDFS without resource typing has %d rules, want 13", len(noRT))
	}
}

func TestCustomRule(t *testing.T) {
	// A rule that mirrors every (x p1 y) as (y p1 x).
	sym := &CustomRule{
		RuleName: "custom-sym",
		In:       []rdf.ID{p1},
		Out:      []rdf.ID{p1},
		Fn: func(_ Source, delta []rdf.Triple, emit func(rdf.Triple)) {
			for _, t := range delta {
				if t.P == p1 {
					emit(rdf.T(t.O, t.P, t.S))
				}
			}
		},
	}
	got := applyRule(sym, nil, []rdf.Triple{rdf.T(x, p1, y)})
	wantTriples(t, got, []rdf.Triple{rdf.T(y, p1, x)})
	if sym.Name() != "custom-sym" {
		t.Fatal("Name mismatch")
	}
	// Nil Fn is a no-op, not a panic.
	empty := &CustomRule{RuleName: "noop"}
	got = applyRule(empty, nil, []rdf.Triple{rdf.T(x, p1, y)})
	if len(got) != 0 {
		t.Fatal("nil Fn emitted triples")
	}
}
