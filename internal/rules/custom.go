package rules

import (
	"repro/internal/rdf"
)

// CustomRule adapts a plain function into a Rule, supporting the paper's
// "Fragment's Customization" feature: Slider "allows the addition of any
// new custom rules" through a simple interface.
type CustomRule struct {
	// RuleName identifies the rule in statistics and the dependency graph.
	RuleName string
	// In lists the predicates the rule consumes; nil means universal input.
	In []rdf.ID
	// Out lists the predicates the rule can produce; use AnyPredicate for
	// rules with unbounded output vocabulary.
	Out []rdf.ID
	// Fn performs the delta⋈source join and emits derived triples.
	Fn func(src Source, delta []rdf.Triple, emit func(rdf.Triple))
	// SupportsFn, when set, answers the targeted backward question "is t
	// derivable in a single step from premises in src" (see Supporter).
	// It must be exact with respect to Fn. Rulesets whose every rule has
	// a support face qualify for suspect-local retraction; one custom
	// rule without it falls the whole set back to full-store
	// rederivation.
	SupportsFn func(src Source, t rdf.Triple) bool
}

// Name implements Rule.
func (c *CustomRule) Name() string { return c.RuleName }

// Inputs implements Rule.
func (c *CustomRule) Inputs() []rdf.ID { return c.In }

// Outputs implements Rule.
func (c *CustomRule) Outputs() []rdf.ID { return c.Out }

// Apply implements Rule.
func (c *CustomRule) Apply(src Source, delta []rdf.Triple, emit func(rdf.Triple)) {
	if c.Fn != nil {
		c.Fn(src, delta, emit)
	}
}

// Supports implements Supporter when SupportsFn is set. Without one it
// conservatively reports no support; callers gate on CanSupport, so a
// nil SupportsFn routes retraction to the full-rederive path instead.
func (c *CustomRule) Supports(src Source, t rdf.Triple) bool {
	if c.SupportsFn == nil {
		return false
	}
	return c.SupportsFn(src, t)
}

var (
	_ Rule      = (*CustomRule)(nil)
	_ Supporter = (*CustomRule)(nil)
)
