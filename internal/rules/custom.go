package rules

import (
	"repro/internal/rdf"
	"repro/internal/store"
)

// CustomRule adapts a plain function into a Rule, supporting the paper's
// "Fragment's Customization" feature: Slider "allows the addition of any
// new custom rules" through a simple interface.
type CustomRule struct {
	// RuleName identifies the rule in statistics and the dependency graph.
	RuleName string
	// In lists the predicates the rule consumes; nil means universal input.
	In []rdf.ID
	// Out lists the predicates the rule can produce; use AnyPredicate for
	// rules with unbounded output vocabulary.
	Out []rdf.ID
	// Fn performs the delta⋈store join and emits derived triples.
	Fn func(st *store.Store, delta []rdf.Triple, emit func(rdf.Triple))
}

// Name implements Rule.
func (c *CustomRule) Name() string { return c.RuleName }

// Inputs implements Rule.
func (c *CustomRule) Inputs() []rdf.ID { return c.In }

// Outputs implements Rule.
func (c *CustomRule) Outputs() []rdf.ID { return c.Out }

// Apply implements Rule.
func (c *CustomRule) Apply(st *store.Store, delta []rdf.Triple, emit func(rdf.Triple)) {
	if c.Fn != nil {
		c.Fn(st, delta, emit)
	}
}

var _ Rule = (*CustomRule)(nil)
