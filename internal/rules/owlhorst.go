package rules

import (
	"repro/internal/rdf"
)

// This file implements an OWL-Horst-style (pD*) extension fragment — the
// paper's first future-work item: "implement more complex inference
// rules, in order to implement reasoning over a more complex fragments".
// The rules follow the OWL 2 RL profile naming and cover property
// characteristics (symmetric, transitive, inverse), class/property
// equivalence, and owl:sameAs equality reasoning. Existential (blank-node
// introducing) rules are out of scope, as in OWL Horst.

// prpSymp implements prp-symp:
// (p type SymmetricProperty), (x p y) → (y p x).
type prpSymp struct{}

func (prpSymp) Name() string      { return "prp-symp" }
func (prpSymp) Inputs() []rdf.ID  { return nil }
func (prpSymp) Outputs() []rdf.ID { return []rdf.ID{AnyPredicate} }

func (prpSymp) Apply(src Source, delta []rdf.Triple, emit func(rdf.Triple)) {
	for _, t := range delta {
		if t.P == rdf.IDType && t.O == rdf.IDSymmetricProperty {
			// New symmetric property: mirror its existing extent.
			src.ForEachWithPredicate(t.S, func(x, y rdf.ID) bool {
				if !x.IsLiteral() {
					emit(rdf.Triple{S: y, P: t.S, O: x})
				}
				return true
			})
			continue
		}
		if t.O.IsLiteral() {
			continue // literals cannot be subjects
		}
		if src.Contains(rdf.Triple{S: t.P, P: rdf.IDType, O: rdf.IDSymmetricProperty}) {
			emit(rdf.Triple{S: t.O, P: t.P, O: t.S})
		}
	}
}

func (prpSymp) Supports(src Source, t rdf.Triple) bool {
	return !t.S.IsLiteral() &&
		src.Contains(rdf.Triple{S: t.P, P: rdf.IDType, O: rdf.IDSymmetricProperty}) &&
		src.Contains(rdf.Triple{S: t.O, P: t.P, O: t.S})
}

// prpTrp implements prp-trp:
// (p type TransitiveProperty), (x p y), (y p z) → (x p z).
type prpTrp struct{}

func (prpTrp) Name() string      { return "prp-trp" }
func (prpTrp) Inputs() []rdf.ID  { return nil }
func (prpTrp) Outputs() []rdf.ID { return []rdf.ID{AnyPredicate} }

func (prpTrp) Apply(src Source, delta []rdf.Triple, emit func(rdf.Triple)) {
	for _, t := range delta {
		if t.P == rdf.IDType && t.O == rdf.IDTransitiveProperty {
			// New transitive property: close its existing extent one
			// step; subsequent deltas complete the fixpoint.
			p := t.S
			src.ForEachWithPredicate(p, func(x, y rdf.ID) bool {
				for _, z := range src.Objects(p, y) {
					emit(rdf.Triple{S: x, P: p, O: z})
				}
				return true
			})
			continue
		}
		if !src.Contains(rdf.Triple{S: t.P, P: rdf.IDType, O: rdf.IDTransitiveProperty}) {
			continue
		}
		for _, z := range src.Objects(t.P, t.O) {
			emit(rdf.Triple{S: t.S, P: t.P, O: z})
		}
		for _, x := range src.Subjects(t.P, t.S) {
			emit(rdf.Triple{S: x, P: t.P, O: t.O})
		}
	}
}

func (prpTrp) Supports(src Source, t rdf.Triple) bool {
	if !src.Contains(rdf.Triple{S: t.P, P: rdf.IDType, O: rdf.IDTransitiveProperty}) {
		return false
	}
	// ∃ y: (t.S t.P y), (y t.P t.O).
	return rdf.HasCommonSorted(src.Objects(t.P, t.S), src.Subjects(t.P, t.O))
}

// prpInv implements prp-inv1 and prp-inv2:
// (p inverseOf q), (x p y) → (y q x); (p inverseOf q), (x q y) → (y p x).
type prpInv struct{}

func (prpInv) Name() string      { return "prp-inv" }
func (prpInv) Inputs() []rdf.ID  { return nil }
func (prpInv) Outputs() []rdf.ID { return []rdf.ID{AnyPredicate} }

func (prpInv) Apply(src Source, delta []rdf.Triple, emit func(rdf.Triple)) {
	mirror := func(from, to rdf.ID) {
		src.ForEachWithPredicate(from, func(x, y rdf.ID) bool {
			if !y.IsLiteral() {
				emit(rdf.Triple{S: y, P: to, O: x})
			}
			return true
		})
	}
	for _, t := range delta {
		if t.P == rdf.IDInverseOf {
			mirror(t.S, t.O)
			mirror(t.O, t.S)
			continue
		}
		if t.O.IsLiteral() {
			continue
		}
		for _, q := range src.Objects(rdf.IDInverseOf, t.P) {
			emit(rdf.Triple{S: t.O, P: q, O: t.S})
		}
		for _, q := range src.Subjects(rdf.IDInverseOf, t.P) {
			emit(rdf.Triple{S: t.O, P: q, O: t.S})
		}
	}
}

func (prpInv) Supports(src Source, t rdf.Triple) bool {
	if t.S.IsLiteral() {
		return false
	}
	// ∃ q: (q inverseOf t.P) or (t.P inverseOf q), with (t.O q t.S).
	for _, q := range src.Subjects(rdf.IDInverseOf, t.P) {
		if src.Contains(rdf.Triple{S: t.O, P: q, O: t.S}) {
			return true
		}
	}
	for _, q := range src.Objects(rdf.IDInverseOf, t.P) {
		if src.Contains(rdf.Triple{S: t.O, P: q, O: t.S}) {
			return true
		}
	}
	return false
}

// prpEqp implements prp-eqp1/prp-eqp2:
// (p equivalentProperty q), (x p y) → (x q y), and symmetrically.
type prpEqp struct{}

func (prpEqp) Name() string      { return "prp-eqp" }
func (prpEqp) Inputs() []rdf.ID  { return nil }
func (prpEqp) Outputs() []rdf.ID { return []rdf.ID{AnyPredicate} }

func (prpEqp) Apply(src Source, delta []rdf.Triple, emit func(rdf.Triple)) {
	replay := func(from, to rdf.ID) {
		if from == to {
			return
		}
		src.ForEachWithPredicate(from, func(x, y rdf.ID) bool {
			emit(rdf.Triple{S: x, P: to, O: y})
			return true
		})
	}
	for _, t := range delta {
		if t.P == rdf.IDEquivalentProperty {
			replay(t.S, t.O)
			replay(t.O, t.S)
			continue
		}
		for _, q := range src.Objects(rdf.IDEquivalentProperty, t.P) {
			if q != t.P {
				emit(rdf.Triple{S: t.S, P: q, O: t.O})
			}
		}
		for _, q := range src.Subjects(rdf.IDEquivalentProperty, t.P) {
			if q != t.P {
				emit(rdf.Triple{S: t.S, P: q, O: t.O})
			}
		}
	}
}

func (prpEqp) Supports(src Source, t rdf.Triple) bool {
	// ∃ p ≠ t.P: (p eqP t.P) or (t.P eqP p), with (t.S p t.O).
	for _, p := range src.Subjects(rdf.IDEquivalentProperty, t.P) {
		if p != t.P && src.Contains(rdf.Triple{S: t.S, P: p, O: t.O}) {
			return true
		}
	}
	for _, p := range src.Objects(rdf.IDEquivalentProperty, t.P) {
		if p != t.P && src.Contains(rdf.Triple{S: t.S, P: p, O: t.O}) {
			return true
		}
	}
	return false
}

// caxEqc implements cax-eqc1/cax-eqc2:
// (c equivalentClass d), (x type c) → (x type d), and symmetrically.
type caxEqc struct{}

func (caxEqc) Name() string      { return "cax-eqc" }
func (caxEqc) Inputs() []rdf.ID  { return []rdf.ID{rdf.IDEquivalentClass, rdf.IDType} }
func (caxEqc) Outputs() []rdf.ID { return []rdf.ID{rdf.IDType} }

func (caxEqc) Apply(src Source, delta []rdf.Triple, emit func(rdf.Triple)) {
	for _, t := range delta {
		switch t.P {
		case rdf.IDEquivalentClass:
			for _, x := range src.Subjects(rdf.IDType, t.S) {
				emit(rdf.Triple{S: x, P: rdf.IDType, O: t.O})
			}
			for _, x := range src.Subjects(rdf.IDType, t.O) {
				emit(rdf.Triple{S: x, P: rdf.IDType, O: t.S})
			}
		case rdf.IDType:
			for _, d := range src.Objects(rdf.IDEquivalentClass, t.O) {
				emit(rdf.Triple{S: t.S, P: rdf.IDType, O: d})
			}
			for _, d := range src.Subjects(rdf.IDEquivalentClass, t.O) {
				emit(rdf.Triple{S: t.S, P: rdf.IDType, O: d})
			}
		}
	}
}

func (caxEqc) Supports(src Source, t rdf.Triple) bool {
	if t.P != rdf.IDType {
		return false
	}
	// ∃ c: (c eqC t.O) or (t.O eqC c), with (t.S type c).
	types := src.Objects(rdf.IDType, t.S)
	return rdf.HasCommonSorted(types, src.Subjects(rdf.IDEquivalentClass, t.O)) ||
		rdf.HasCommonSorted(types, src.Objects(rdf.IDEquivalentClass, t.O))
}

// scmEqc implements scm-eqc1: (c equivalentClass d) → (c sc d), (d sc c).
type scmEqc struct{}

func (scmEqc) Name() string      { return "scm-eqc" }
func (scmEqc) Inputs() []rdf.ID  { return []rdf.ID{rdf.IDEquivalentClass} }
func (scmEqc) Outputs() []rdf.ID { return []rdf.ID{rdf.IDSubClassOf} }

func (scmEqc) Apply(_ Source, delta []rdf.Triple, emit func(rdf.Triple)) {
	for _, t := range delta {
		if t.P != rdf.IDEquivalentClass {
			continue
		}
		emit(rdf.Triple{S: t.S, P: rdf.IDSubClassOf, O: t.O})
		emit(rdf.Triple{S: t.O, P: rdf.IDSubClassOf, O: t.S})
	}
}

func (scmEqc) Supports(src Source, t rdf.Triple) bool {
	return t.P == rdf.IDSubClassOf &&
		(src.Contains(rdf.Triple{S: t.S, P: rdf.IDEquivalentClass, O: t.O}) ||
			src.Contains(rdf.Triple{S: t.O, P: rdf.IDEquivalentClass, O: t.S}))
}

// scmEqp implements scm-eqp1: (p equivalentProperty q) → (p sp q), (q sp p).
type scmEqp struct{}

func (scmEqp) Name() string      { return "scm-eqp" }
func (scmEqp) Inputs() []rdf.ID  { return []rdf.ID{rdf.IDEquivalentProperty} }
func (scmEqp) Outputs() []rdf.ID { return []rdf.ID{rdf.IDSubPropertyOf} }

func (scmEqp) Apply(_ Source, delta []rdf.Triple, emit func(rdf.Triple)) {
	for _, t := range delta {
		if t.P != rdf.IDEquivalentProperty {
			continue
		}
		emit(rdf.Triple{S: t.S, P: rdf.IDSubPropertyOf, O: t.O})
		emit(rdf.Triple{S: t.O, P: rdf.IDSubPropertyOf, O: t.S})
	}
}

func (scmEqp) Supports(src Source, t rdf.Triple) bool {
	return t.P == rdf.IDSubPropertyOf &&
		(src.Contains(rdf.Triple{S: t.S, P: rdf.IDEquivalentProperty, O: t.O}) ||
			src.Contains(rdf.Triple{S: t.O, P: rdf.IDEquivalentProperty, O: t.S}))
}

// eqSymTrans implements eq-sym and eq-trans:
// (x sameAs y) → (y sameAs x); (x sameAs y), (y sameAs z) → (x sameAs z).
type eqSymTrans struct{}

func (eqSymTrans) Name() string      { return "eq-sym-trans" }
func (eqSymTrans) Inputs() []rdf.ID  { return []rdf.ID{rdf.IDSameAs} }
func (eqSymTrans) Outputs() []rdf.ID { return []rdf.ID{rdf.IDSameAs} }

func (eqSymTrans) Apply(src Source, delta []rdf.Triple, emit func(rdf.Triple)) {
	for _, t := range delta {
		if t.P != rdf.IDSameAs {
			continue
		}
		if t.S != t.O {
			emit(rdf.Triple{S: t.O, P: rdf.IDSameAs, O: t.S})
		}
		for _, z := range src.Objects(rdf.IDSameAs, t.O) {
			emit(rdf.Triple{S: t.S, P: rdf.IDSameAs, O: z})
		}
		for _, x := range src.Subjects(rdf.IDSameAs, t.S) {
			emit(rdf.Triple{S: x, P: rdf.IDSameAs, O: t.O})
		}
	}
}

func (eqSymTrans) Supports(src Source, t rdf.Triple) bool {
	if t.P != rdf.IDSameAs {
		return false
	}
	// Symmetry: (t.O sameAs t.S), emitted only for distinct ends.
	if t.S != t.O && src.Contains(rdf.Triple{S: t.O, P: rdf.IDSameAs, O: t.S}) {
		return true
	}
	// Transitivity: ∃ m: (t.S sameAs m), (m sameAs t.O).
	return rdf.HasCommonSorted(src.Objects(rdf.IDSameAs, t.S), src.Subjects(rdf.IDSameAs, t.O))
}

// eqRep implements eq-rep-s and eq-rep-o: replace sameAs-equal resources
// in subject and object position. (Predicate replacement, eq-rep-p, is
// included for completeness; it is rare in practice.)
type eqRep struct{}

func (eqRep) Name() string      { return "eq-rep" }
func (eqRep) Inputs() []rdf.ID  { return nil }
func (eqRep) Outputs() []rdf.ID { return []rdf.ID{AnyPredicate} }

func (eqRep) Apply(src Source, delta []rdf.Triple, emit func(rdf.Triple)) {
	for _, t := range delta {
		if t.P == rdf.IDSameAs {
			// (x sameAs y): rewrite existing triples mentioning x to
			// mention y (the symmetric closure handles the other way).
			x, y := t.S, t.O
			if x == y {
				continue
			}
			src.ForEach(func(u rdf.Triple) bool {
				if u.P == rdf.IDSameAs {
					return true
				}
				if u.S == x {
					emit(rdf.Triple{S: y, P: u.P, O: u.O})
				}
				if u.O == x {
					emit(rdf.Triple{S: u.S, P: u.P, O: y})
				}
				if u.P == x {
					emit(rdf.Triple{S: u.S, P: y, O: u.O})
				}
				return true
			})
			continue
		}
		// New assertion: substitute each position's sameAs equivalents.
		for _, s2 := range src.Objects(rdf.IDSameAs, t.S) {
			emit(rdf.Triple{S: s2, P: t.P, O: t.O})
		}
		if !t.O.IsLiteral() {
			for _, o2 := range src.Objects(rdf.IDSameAs, t.O) {
				emit(rdf.Triple{S: t.S, P: t.P, O: o2})
			}
		}
		for _, p2 := range src.Objects(rdf.IDSameAs, t.P) {
			emit(rdf.Triple{S: t.S, P: p2, O: t.O})
		}
	}
}

func (eqRep) Supports(src Source, t rdf.Triple) bool {
	// Every eq-rep derivation rewrites one position of a non-sameAs
	// premise u via a (a sameAs b) premise with a ≠ b (equal ends are
	// skipped, and sameAs-predicate triples are never rewritten — the
	// conclusion's rewritten-position term therefore differs from u's).
	//
	// Subject: (a sameAs t.S), (a t.P t.O) → t.
	for _, a := range src.Subjects(rdf.IDSameAs, t.S) {
		if a != t.S && t.P != rdf.IDSameAs &&
			src.Contains(rdf.Triple{S: a, P: t.P, O: t.O}) {
			return true
		}
	}
	// Object: (b sameAs t.O), (t.S t.P b) → t, b not a literal.
	for _, b := range src.Subjects(rdf.IDSameAs, t.O) {
		if b != t.O && t.P != rdf.IDSameAs && !b.IsLiteral() &&
			src.Contains(rdf.Triple{S: t.S, P: t.P, O: b}) {
			return true
		}
	}
	// Predicate: (q sameAs t.P), (t.S q t.O) → t, q not sameAs itself.
	for _, q := range src.Subjects(rdf.IDSameAs, t.P) {
		if q != t.P && q != rdf.IDSameAs &&
			src.Contains(rdf.Triple{S: t.S, P: q, O: t.O}) {
			return true
		}
	}
	return false
}

// OWL-rule constructors.

// PrpSymp returns the symmetric-property rule.
func PrpSymp() Rule { return prpSymp{} }

// PrpTrp returns the transitive-property rule.
func PrpTrp() Rule { return prpTrp{} }

// PrpInv returns the inverse-property rule.
func PrpInv() Rule { return prpInv{} }

// PrpEqp returns the equivalent-property rule.
func PrpEqp() Rule { return prpEqp{} }

// CaxEqc returns the equivalent-class membership rule.
func CaxEqc() Rule { return caxEqc{} }

// ScmEqc returns the equivalentClass→subClassOf schema rule.
func ScmEqc() Rule { return scmEqc{} }

// ScmEqp returns the equivalentProperty→subPropertyOf schema rule.
func ScmEqp() Rule { return scmEqp{} }

// EqSymTrans returns the sameAs symmetry/transitivity rule.
func EqSymTrans() Rule { return eqSymTrans{} }

// EqRep returns the sameAs replacement rule. Note: materialising sameAs
// replacement can square the size of dense equivalence clusters; keep
// clusters small or leave this rule out of custom fragments.
func EqRep() Rule { return eqRep{} }

// OWLHorst returns the OWL-Horst-style fragment: RDFS plus the property
// characteristic, equivalence and sameAs rules.
func OWLHorst() []Rule {
	return append(RDFS(),
		PrpSymp(), PrpTrp(), PrpInv(), PrpEqp(),
		CaxEqc(), ScmEqc(), ScmEqp(),
		EqSymTrans(), EqRep(),
	)
}
