package rules

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/rdf"
)

// DependencyGraph is the rules dependency graph of paper §2.3: a directed
// graph whose vertices are rules and whose edge A→B means "triples
// produced by A can be consumed by B". Slider builds it once at
// initialisation; each rule's distributor then routes inferred triples to
// exactly the buffers of its dependent rules.
type DependencyGraph struct {
	rules []Rule
	// dependents[name] lists the names of rules that consume name's
	// output, sorted.
	dependents map[string][]string
	// universal lists rules with universal input (they depend on every
	// rule, including themselves).
	universal []string
}

// BuildDependencyGraph derives the graph from the rules' input/output
// predicate signatures. An output of AnyPredicate reaches every rule; a
// rule with nil Inputs (universal input) receives every output.
func BuildDependencyGraph(ruleset []Rule) *DependencyGraph {
	g := &DependencyGraph{
		rules:      ruleset,
		dependents: make(map[string][]string, len(ruleset)),
	}
	for _, r := range ruleset {
		if r.Inputs() == nil {
			g.universal = append(g.universal, r.Name())
		}
	}
	sort.Strings(g.universal)
	for _, producer := range ruleset {
		outs := producer.Outputs()
		var deps []string
		for _, consumer := range ruleset {
			if dependsOn(outs, consumer) {
				deps = append(deps, consumer.Name())
			}
		}
		sort.Strings(deps)
		g.dependents[producer.Name()] = deps
	}
	return g
}

// dependsOn reports whether consumer can use any triple whose predicate is
// in outs.
func dependsOn(outs []rdf.ID, consumer Rule) bool {
	ins := consumer.Inputs()
	if ins == nil {
		return len(outs) > 0
	}
	for _, o := range outs {
		if o == AnyPredicate {
			return true
		}
		for _, i := range ins {
			if o == i {
				return true
			}
		}
	}
	return false
}

// Rules returns the ruleset the graph was built from.
func (g *DependencyGraph) Rules() []Rule { return g.rules }

// DependentsOf returns the names of rules that consume the named rule's
// output, in sorted order.
func (g *DependencyGraph) DependentsOf(name string) []string {
	return g.dependents[name]
}

// Universal returns the names of rules with universal input.
func (g *DependencyGraph) Universal() []string { return g.universal }

// HasEdge reports whether from's output feeds into to.
func (g *DependencyGraph) HasEdge(from, to string) bool {
	for _, d := range g.dependents[from] {
		if d == to {
			return true
		}
	}
	return false
}

// Edges returns all edges as (from, to) pairs, sorted.
func (g *DependencyGraph) Edges() [][2]string {
	var out [][2]string
	names := make([]string, 0, len(g.dependents))
	for n := range g.dependents {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, from := range names {
		for _, to := range g.dependents[from] {
			out = append(out, [2]string{from, to})
		}
	}
	return out
}

// DOT renders the graph in Graphviz DOT syntax, reproducing the paper's
// Figure 2 for the ρdf fragment. Universal-input rules are grouped under
// a "Universal Input" cluster like in the figure.
func (g *DependencyGraph) DOT() string {
	var b strings.Builder
	b.WriteString("digraph rules {\n")
	b.WriteString("  rankdir=TB;\n")
	b.WriteString("  node [shape=circle, fontsize=10];\n")
	if len(g.universal) > 0 {
		b.WriteString("  subgraph cluster_universal {\n")
		b.WriteString("    label=\"Universal Input\";\n")
		for _, n := range g.universal {
			fmt.Fprintf(&b, "    %q;\n", n)
		}
		b.WriteString("  }\n")
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(&b, "  %q -> %q;\n", e[0], e[1])
	}
	b.WriteString("}\n")
	return b.String()
}
