// Package rules implements the inference rules of the ρdf and RDFS
// fragments, the Rule abstraction that lets Slider stay fragment-agnostic,
// and the rules dependency graph the engine builds at initialisation
// (paper §2.1 and §2.3).
//
// Every rule is a forward-chaining production: its Apply method joins a
// delta (newly arrived triples) against the triple store in both
// directions, exactly as the paper's Algorithm 1 does for cax-sco. A rule
// never needs to join the delta against itself because the engine inserts
// incoming triples into the store *before* routing them to rule buffers,
// so the store always contains the delta at application time.
package rules

import (
	"repro/internal/rdf"
	"repro/internal/store"
)

// AnyPredicate marks, in a rule's Outputs signature, that the rule can
// produce triples with arbitrary predicates (e.g. prp-spo1).
const AnyPredicate = rdf.Any

// Rule is one inference rule, mapped by the engine onto one independent
// rule module with its own buffer and distributor.
type Rule interface {
	// Name returns the rule's identifier, using the OWL 2 RL profile
	// naming (cax-sco, scm-sco, …) or the RDF Semantics naming (rdfs8).
	Name() string

	// Inputs returns the predicate IDs of triples the rule consumes. A
	// nil slice means universal input: the rule must see every triple
	// (paper Figure 2's "Universal Input" rules).
	Inputs() []rdf.ID

	// Outputs returns the predicate IDs of triples the rule can produce.
	// AnyPredicate means the rule can produce arbitrary predicates.
	Outputs() []rdf.ID

	// Apply joins delta against st and calls emit for every derived
	// triple (duplicates allowed; the store deduplicates downstream).
	// Apply must not mutate st: it runs concurrently with other rule
	// instances holding read access.
	Apply(st *store.Store, delta []rdf.Triple, emit func(rdf.Triple))
}

// Names returns the names of a ruleset, in order.
func Names(ruleset []Rule) []string {
	out := make([]string, len(ruleset))
	for i, r := range ruleset {
		out[i] = r.Name()
	}
	return out
}

// ByName returns the rule with the given name, or nil.
func ByName(ruleset []Rule, name string) Rule {
	for _, r := range ruleset {
		if r.Name() == name {
			return r
		}
	}
	return nil
}
