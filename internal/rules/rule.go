// Package rules implements the inference rules of the ρdf and RDFS
// fragments, the Rule abstraction that lets Slider stay fragment-agnostic,
// and the rules dependency graph the engine builds at initialisation
// (paper §2.1 and §2.3).
//
// Every rule is a forward-chaining production: its Apply method joins a
// delta (newly arrived triples) against a triple source in both
// directions, exactly as the paper's Algorithm 1 does for cax-sco. A rule
// never needs to join the delta against itself because the engine inserts
// incoming triples into the store *before* routing them to rule buffers,
// so the source always contains the delta at application time.
//
// Rules read through the Source interface rather than the concrete store:
// the engine applies them against the live *store.Store, while the
// maintenance subsystem applies the same join logic against frozen
// copy-on-write store views (and suspect-masked wrappers of either) to
// run delete-and-rederive without stalling writers.
package rules

import (
	"repro/internal/rdf"
	"repro/internal/store"
)

// AnyPredicate marks, in a rule's Outputs signature, that the rule can
// produce triples with arbitrary predicates (e.g. prp-spo1).
const AnyPredicate = rdf.Any

// Source is the read face a rule joins against: the pattern-indexed
// probes of the vertically partitioned store. Both the live *store.Store
// and a frozen *store.View satisfy it, so the same rule code runs on the
// hot inference path and against copy-on-write snapshots.
type Source interface {
	// Contains reports whether the exact triple is present.
	Contains(t rdf.Triple) bool
	// ObjectsAppend appends the objects o with (s, p, o) present to dst,
	// in ascending ID order — the sorted contract the ∃-joins below
	// exploit with galloping intersection (rdf.HasCommonSorted).
	ObjectsAppend(dst []rdf.ID, p, s rdf.ID) []rdf.ID
	// SubjectsAppend appends the subjects s with (s, p, o) present to
	// dst, in ascending ID order.
	SubjectsAppend(dst []rdf.ID, p, o rdf.ID) []rdf.ID
	// Objects returns a copy of the objects o with (s, p, o) present,
	// in ascending ID order.
	Objects(p, s rdf.ID) []rdf.ID
	// Subjects returns a copy of the subjects s with (s, p, o) present,
	// in ascending ID order.
	Subjects(p, o rdf.ID) []rdf.ID
	// ForEachWithPredicate calls f for every (s, o) pair of the
	// predicate until f returns false.
	ForEachWithPredicate(p rdf.ID, f func(s, o rdf.ID) bool)
	// ForEach calls f for every triple until f returns false.
	ForEach(f func(rdf.Triple) bool)
	// Predicates returns all predicates present, in ascending ID order.
	Predicates() []rdf.ID
}

// Both faces of the store satisfy Source.
var (
	_ Source = (*store.Store)(nil)
	_ Source = (*store.View)(nil)
)

// Rule is one inference rule, mapped by the engine onto one independent
// rule module with its own buffer and distributor.
type Rule interface {
	// Name returns the rule's identifier, using the OWL 2 RL profile
	// naming (cax-sco, scm-sco, …) or the RDF Semantics naming (rdfs8).
	Name() string

	// Inputs returns the predicate IDs of triples the rule consumes. A
	// nil slice means universal input: the rule must see every triple
	// (paper Figure 2's "Universal Input" rules).
	Inputs() []rdf.ID

	// Outputs returns the predicate IDs of triples the rule can produce.
	// AnyPredicate means the rule can produce arbitrary predicates.
	Outputs() []rdf.ID

	// Apply joins delta against src and calls emit for every derived
	// triple (duplicates allowed; the store deduplicates downstream).
	// Apply must not mutate src: it runs concurrently with other rule
	// instances holding read access.
	Apply(src Source, delta []rdf.Triple, emit func(rdf.Triple))
}

// Supporter is the targeted backward face of a rule: where Apply asks
// "what does this delta derive", Supports asks "is this one triple
// derivable in a single step from premises present in src". It is the
// primitive behind suspect-local delete-and-rederive: after overdeletion,
// each suspect is probed for an alternative derivation grounded outside
// the suspect set (the caller masks suspects out of src), so retraction
// cost scales with the suspects, not the store.
//
// Supports must be exact with respect to Apply: it returns true if and
// only if some instantiation of the rule with all premises in src
// concludes t. An over-approximation resurrects triples that lost their
// last derivation; an under-approximation deletes triples that still
// have one.
type Supporter interface {
	Supports(src Source, t rdf.Triple) bool
}

// CanSupport reports whether r can answer Supports queries. All built-in
// rules can; a CustomRule can when its SupportsFn is set.
func CanSupport(r Rule) bool {
	if c, ok := r.(*CustomRule); ok {
		return c.SupportsFn != nil
	}
	_, ok := r.(Supporter)
	return ok
}

// AllSupport reports whether every rule of the set can answer Supports
// queries — the gate for the suspect-local retraction path. A set with
// any non-supporting rule falls back to full-store rederivation.
func AllSupport(ruleset []Rule) bool {
	for _, r := range ruleset {
		if !CanSupport(r) {
			return false
		}
	}
	return true
}

// Supported reports whether any rule of the set derives t in one step
// from premises in src. Callers must have checked AllSupport; rules
// without a Supports face are skipped (treated as deriving nothing).
func Supported(ruleset []Rule, src Source, t rdf.Triple) bool {
	for _, r := range ruleset {
		if s, ok := r.(Supporter); ok && s.Supports(src, t) {
			return true
		}
	}
	return false
}

// Names returns the names of a ruleset, in order.
func Names(ruleset []Rule) []string {
	out := make([]string, len(ruleset))
	for i, r := range ruleset {
		out[i] = r.Name()
	}
	return out
}

// ByName returns the rule with the given name, or nil.
func ByName(ruleset []Rule, name string) Rule {
	for _, r := range ruleset {
		if r.Name() == name {
			return r
		}
	}
	return nil
}
