// Guard benchmark for the observability layer: the same AddBatch ingest
// with recording enabled (the default) and with obs.Disabled(). The two
// must stay within a few percent of each other — the instrumentation is
// one atomic flag load plus a handful of atomic adds per *batch*, never
// per triple, and this benchmark is the regression tripwire for that
// budget. Compare with:
//
//	go test -run=NONE -bench=BenchmarkIngestObs -count=5
package slider_test

import (
	"context"
	"fmt"
	"testing"

	slider "repro"
	"repro/internal/obs"
)

// ingestOnce streams total statements through a fresh reasoner in
// batches of batch and waits for quiescence.
func ingestOnce(b *testing.B, total, batch int) {
	b.Helper()
	r := slider.New(slider.RhoDF)
	defer r.Close(context.Background())
	// A short subclass chain so ingest exercises inference, as in the
	// serving benchmark.
	schema := make([]slider.Statement, 0, 4)
	for i := 0; i < 4; i++ {
		schema = append(schema, slider.NewStatement(
			slider.IRI(fmt.Sprintf("http://b/C%d", i)),
			slider.IRI(slider.SubClassOf),
			slider.IRI(fmt.Sprintf("http://b/C%d", i+1))))
	}
	if _, err := r.AddBatch(schema); err != nil {
		b.Fatal(err)
	}
	sts := make([]slider.Statement, batch)
	for done := 0; done < total; done += batch {
		for i := range sts {
			sts[i] = slider.NewStatement(
				slider.IRI(fmt.Sprintf("http://b/m%d", done+i)),
				slider.IRI(slider.Type),
				slider.IRI("http://b/C0"))
		}
		if _, err := r.AddBatch(sts); err != nil {
			b.Fatal(err)
		}
	}
	if err := r.Wait(context.Background()); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkIngestObsEnabled(b *testing.B) {
	const total, batch = 20000, 256
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ingestOnce(b, total, batch)
	}
	b.ReportMetric(float64(total), "stmts/op")
}

func BenchmarkIngestObsDisabled(b *testing.B) {
	restore := obs.Disabled()
	defer restore()
	const total, batch = 20000, 256
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ingestOnce(b, total, batch)
	}
	b.ReportMetric(float64(total), "stmts/op")
}
