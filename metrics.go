// Metrics: the reasoner's flight recorder. Every Reasoner owns an
// obs.Registry; the hot paths (ingest, checkpointing, view refresh,
// retraction, WAL, compaction, query planning) record into lock-free
// histograms and counters registered there, and cumulative counters the
// subsystems already keep (engine and store stats) are bridged in as
// functions reading the very same atomics — so /stats and /metrics can
// never disagree. The serving layer exposes the registry at GET
// /metrics in Prometheus text format.
package slider

import (
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/query"
)

// Build identifies the running binary: the main module version, the Go
// toolchain that compiled it and the VCS revision, as stamped by the
// linker. Fields read "unknown" when the binary was built outside
// module/VCS context (go test, plain go build in a dirty tree).
type Build struct {
	Version   string `json:"version"`
	GoVersion string `json:"go_version"`
	Revision  string `json:"revision"`
}

// BuildInfo returns the binary's build identification, read once from
// runtime/debug. The serving layer surfaces it as the
// slider_build_info gauge and the /stats build block, so a scrape can
// tell which binary answered.
var BuildInfo = sync.OnceValue(func() Build {
	b := Build{Version: "unknown", GoVersion: runtime.Version(), Revision: "unknown"}
	if bi, ok := debug.ReadBuildInfo(); ok {
		if bi.Main.Version != "" && bi.Main.Version != "(devel)" {
			b.Version = bi.Main.Version
		}
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" && s.Value != "" {
				b.Revision = s.Value
			}
		}
	}
	return b
})

// Metrics returns the reasoner's metrics registry. The serving layer
// scrapes it; applications may register their own instruments or
// render it with WriteText. Recording is process-globally switchable
// with obs.SetEnabled.
func (r *Reasoner) Metrics() *obs.Registry { return r.obs.reg }

// rmetrics holds the facade-level instruments. One per Reasoner,
// registered in newReasoner (and openDurable for the durable extras).
type rmetrics struct {
	reg *obs.Registry

	// Ingest: one observation per applyAssert batch — the synchronous
	// part of ingestion (store insertion plus routing; rule execution
	// is asynchronous and shows up in the engine bridges instead).
	ingestSeconds *obs.Histogram
	ingestBatch   *obs.Histogram
	ingestBatches *obs.Counter
	ingestTriples *obs.Counter

	// Checkpoint phases: mark (writers paused), stream (lock-free
	// serialisation), commit (manifest rename + prune).
	ckptMark   *obs.Histogram
	ckptStream *obs.Histogram
	ckptCommit *obs.Histogram
	ckptTotal  *obs.Counter

	// Read-session snapshot refresh: the quiesce-and-freeze latency.
	viewRefresh *obs.Histogram

	// Retraction phases: prepare (concurrent suspect analysis over a
	// frozen view) vs apply (the exclusive validate-and-apply window —
	// the writer pause a retraction inflicts).
	retractPrepare *obs.Histogram
	retractApply   *obs.Histogram
	retractTotal   *obs.Counter

	// Query engine instruments, shared by Select/SelectQuery and every
	// View session (the serving layer's query path included).
	query *query.Metrics
}

// newRMetrics registers the facade instruments in reg.
func newRMetrics(reg *obs.Registry) *rmetrics {
	const ckptName = "slider_checkpoint_seconds"
	const ckptHelp = "Checkpoint phase durations: mark pauses writers, stream and commit run lock-free."
	const retrName = "slider_retract_seconds"
	const retrHelp = "Retraction phase durations: prepare runs concurrently, apply holds the exclusive writer window."
	return &rmetrics{
		reg: reg,
		ingestSeconds: reg.Histogram("slider_ingest_seconds",
			"Synchronous ingest latency per batch: store insertion and rule routing (inference is asynchronous).", nil),
		ingestBatch: reg.Histogram("slider_ingest_batch_triples",
			"Triples per ingested batch.", obs.SizeBuckets),
		ingestBatches: reg.Counter("slider_ingest_batches_total",
			"Ingested batches."),
		ingestTriples: reg.Counter("slider_ingest_triples_total",
			"Triples handed to the engine (new and duplicate)."),
		ckptMark:   reg.Histogram(ckptName, ckptHelp, nil, "phase", "mark"),
		ckptStream: reg.Histogram(ckptName, ckptHelp, nil, "phase", "stream"),
		ckptCommit: reg.Histogram(ckptName, ckptHelp, nil, "phase", "commit"),
		ckptTotal: reg.Counter("slider_checkpoints_total",
			"Completed checkpoints."),
		viewRefresh: reg.Histogram("slider_view_refresh_seconds",
			"Read-session snapshot refresh latency (quiesce, freeze and install).", nil),
		retractPrepare: reg.Histogram(retrName, retrHelp, nil, "phase", "prepare"),
		retractApply:   reg.Histogram(retrName, retrHelp, nil, "phase", "apply"),
		retractTotal: reg.Counter("slider_retractions_total",
			"Completed retraction passes."),
		query: query.NewMetrics(reg),
	}
}

// registerBridges installs the function-backed instruments that read
// state the subsystems already maintain: engine counters, store
// composition gauges, compaction backlog and snapshot staleness. Called
// once r is fully constructed (the closures capture r).
func (r *Reasoner) registerBridges() {
	reg := r.obs.reg
	reg.CounterFunc("slider_engine_input_total",
		"Explicit triples accepted by the engine (new to the store).",
		func() float64 { return float64(r.engine.Stats().Input) })
	reg.CounterFunc("slider_engine_input_duplicates_total",
		"Explicit triples dropped as already known.",
		func() float64 { return float64(r.engine.Stats().DuplicateInput) })
	reg.CounterFunc("slider_engine_inferred_total",
		"Distinct inferred triples added to the store.",
		func() float64 { return float64(r.engine.Stats().Inferred) })
	reg.CounterFunc("slider_engine_duplicates_total",
		"Derivations dropped because the triple was already present.",
		func() float64 { return float64(r.engine.Stats().Duplicates) })
	reg.CounterFunc("slider_engine_executions_total",
		"Rule-module executions.",
		func() float64 { return float64(r.engine.Stats().Executions) })

	reg.GaugeFunc("slider_store_triples",
		"Distinct triples in the materialised store (explicit plus inferred).",
		func() float64 { return float64(r.store.Len()) })
	reg.GaugeFunc("slider_store_runs",
		"Immutable sorted runs across all store partitions.",
		func() float64 { return float64(r.store.Stats().Runs) })
	reg.GaugeFunc("slider_store_overlay_pairs",
		"Pairs in the store's mutable delta overlays (compaction debt).",
		func() float64 { return float64(r.store.Stats().OverlayPairs) })
	reg.GaugeFunc("slider_store_tombstones",
		"Tombstoned pairs awaiting purge.",
		func() float64 { return float64(r.store.Stats().Tombstones) })
	reg.GaugeFunc("slider_compaction_backlog",
		"Partitions queued for background compaction.",
		func() float64 { return float64(r.store.CompactionBacklog()) })
	reg.CounterFunc("slider_compaction_flushes_total",
		"Overlay flushes (overlay sealed into a run).",
		func() float64 { return float64(r.store.Stats().Compaction.Flushes) })
	reg.CounterFunc("slider_compaction_merges_total",
		"Run merges.",
		func() float64 { return float64(r.store.Stats().Compaction.Merges) })
	reg.CounterFunc("slider_compaction_purges_total",
		"Tombstone purges.",
		func() float64 { return float64(r.store.Stats().Compaction.Purges) })

	reg.GaugeFunc("slider_view_staleness_seconds",
		"Age of the shared read-session snapshot (zero before the first capture).",
		func() float64 { return r.ViewStaleness().Seconds() })

	b := BuildInfo()
	reg.GaugeFunc("slider_build_info",
		"Build identification; constant 1 — the labels carry the payload.",
		func() float64 { return 1 },
		"version", b.Version, "goversion", b.GoVersion, "revision", b.Revision)
}

// ViewStaleness reports how old the cached read-session snapshot is —
// the live gauge behind slider_view_staleness_seconds and the serving
// layer's health staleness field. Zero when no snapshot has been
// captured yet (nothing has been served stale).
func (r *Reasoner) ViewStaleness() time.Duration {
	r.viewMu.Lock()
	cur := r.viewCur
	r.viewMu.Unlock()
	if cur == nil {
		return 0
	}
	return time.Since(cur.born)
}

// BackgroundErr reports the first failure recorded by the reasoner's
// background maintenance — a store compaction panic or a background
// checkpoint error — without blocking on inference or I/O. Unlike Err,
// a non-nil BackgroundErr does not necessarily poison writes (a
// compaction panic leaves the store serving correctly, just
// uncompacted); the serving layer surfaces it as a degraded health
// state.
func (r *Reasoner) BackgroundErr() error {
	if err := r.store.CompactionErr(); err != nil {
		return err
	}
	if r.explicit != nil {
		if err := r.explicit.CompactionErr(); err != nil {
			return err
		}
	}
	if r.dur != nil {
		return r.dur.getBgErr()
	}
	return nil
}
