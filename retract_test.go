package slider

import (
	"context"
	"strings"
	"testing"
)

func TestRetractThroughFacade(t *testing.T) {
	r := New(RhoDF, WithRetraction())
	defer r.Close(context.Background())
	mustAdd(t, r, NewStatement(ex("Cat"), IRI(SubClassOf), ex("Mammal")))
	mustAdd(t, r, NewStatement(ex("Mammal"), IRI(SubClassOf), ex("Animal")))
	mustAdd(t, r, NewStatement(ex("felix"), IRI(Type), ex("Cat")))
	if err := r.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !r.Contains(NewStatement(ex("felix"), IRI(Type), ex("Animal"))) {
		t.Fatal("precondition: inference incomplete")
	}

	stats, err := r.Retract(context.Background(), NewStatement(ex("felix"), IRI(Type), ex("Cat")))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Retracted != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	for _, gone := range []Statement{
		NewStatement(ex("felix"), IRI(Type), ex("Cat")),
		NewStatement(ex("felix"), IRI(Type), ex("Mammal")),
		NewStatement(ex("felix"), IRI(Type), ex("Animal")),
	} {
		if r.Contains(gone) {
			t.Errorf("still contains %v", gone)
		}
	}
	// The schema survives.
	if !r.Contains(NewStatement(ex("Cat"), IRI(SubClassOf), ex("Animal"))) {
		t.Fatal("schema closure lost")
	}

	// The reasoner stays live: re-adding restores the inferences.
	mustAdd(t, r, NewStatement(ex("felix"), IRI(Type), ex("Cat")))
	if err := r.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !r.Contains(NewStatement(ex("felix"), IRI(Type), ex("Animal"))) {
		t.Fatal("re-added data not re-inferred")
	}
}

func TestRetractRequiresOption(t *testing.T) {
	r := New(RhoDF)
	defer r.Close(context.Background())
	if _, err := r.Retract(context.Background(), NewStatement(ex("a"), IRI(Type), ex("b"))); err == nil {
		t.Fatal("Retract without WithRetraction accepted")
	}
}

func TestRetractUnknownStatement(t *testing.T) {
	r := New(RhoDF, WithRetraction())
	defer r.Close(context.Background())
	stats, err := r.Retract(context.Background(), NewStatement(ex("never"), IRI(Type), ex("seen")))
	if err != nil || stats.Retracted != 0 {
		t.Fatalf("stats = %+v, err = %v", stats, err)
	}
}

func TestLoadThenRetractKeepsAlternatives(t *testing.T) {
	doc := `<http://example.org/a> <` + SubClassOf + `> <http://example.org/b> .
<http://example.org/b> <` + SubClassOf + `> <http://example.org/c> .
<http://example.org/a> <` + SubClassOf + `> <http://example.org/e> .
<http://example.org/e> <` + SubClassOf + `> <http://example.org/c> .
`
	r := New(RhoDF, WithRetraction())
	defer r.Close(context.Background())
	if _, err := r.LoadNTriples(strings.NewReader(doc)); err != nil {
		t.Fatal(err)
	}
	if err := r.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Retract(context.Background(), NewStatement(ex("a"), IRI(SubClassOf), ex("b"))); err != nil {
		t.Fatal(err)
	}
	// (a sc c) still derivable via e.
	if !r.Contains(NewStatement(ex("a"), IRI(SubClassOf), ex("c"))) {
		t.Fatal("alternative derivation lost")
	}
	// But (a sc b) is gone.
	if r.Contains(NewStatement(ex("a"), IRI(SubClassOf), ex("b"))) {
		t.Fatal("retracted statement still present")
	}
}
