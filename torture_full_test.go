//go:build slider_torture

package slider

import (
	"fmt"
	"testing"
)

// TestTortureFaultScheduleMatrix is the full seeded torture matrix,
// compiled only under -tags slider_torture (the everyday suite runs the
// sampled TestSeededFaultSchedules instead):
//
//	go test -tags slider_torture -run TestTorture ./...
//
// 32 seeds × escalating fault density, every schedule asserting the
// same contract: faults classify as ErrDegraded, reads serve exactly
// the acknowledged prefix while degraded, recovery restores ok, no
// acknowledged batch is ever lost, and recovery never re-fsyncs a
// failed descriptor.
func TestTortureFaultScheduleMatrix(t *testing.T) {
	for seed := int64(0); seed < 32; seed++ {
		nFaults := 1 + int(seed%4) // 1..4 fault positions per schedule
		t.Run(fmt.Sprintf("seed%02d_faults%d", seed, nFaults), func(t *testing.T) {
			t.Parallel()
			runFaultSchedule(t, seed, nFaults)
		})
	}
}

// TestTortureEveryPositionEveryKind arms every fault kind at every op
// position of the fixed schedule — the exhaustive cross product the
// seeded matrix only samples.
func TestTortureEveryPositionEveryKind(t *testing.T) {
	nOps := len(scheduleOps())
	for pos := 0; pos < nOps; pos++ {
		for kind := 0; kind < 3; kind++ {
			t.Run(fmt.Sprintf("pos%d_kind%d", pos, kind), func(t *testing.T) {
				t.Parallel()
				runFaultScheduleAt(t, pos, kind)
			})
		}
	}
}
