// Benchmarks regenerating the paper's evaluation (§3). One benchmark
// family per table/figure, plus ablations for the design choices
// DESIGN.md calls out. Run with:
//
//	go test -bench=. -benchmem
//
// Dataset sizes here are the harness's "small" scale so the suite
// finishes quickly; use `go run ./cmd/sliderbench -table1 -scale paper`
// for paper-sized runs. See EXPERIMENTS.md for recorded results.
package slider_test

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/baseline"
	"repro/internal/bench"
	"repro/internal/bsbm"
	"repro/internal/ntriples"
	"repro/internal/ontogen"
	"repro/internal/rdf"
	"repro/internal/rules"
	"repro/internal/store"
)

// benchDatasets caches the small-scale suite across benchmarks.
var benchDatasets = bench.Datasets(bench.ScaleSmall)

func datasetNamed(b *testing.B, name string) bench.Dataset {
	b.Helper()
	for _, d := range benchDatasets {
		if d.Name == name {
			return d
		}
	}
	b.Fatalf("no dataset %q", name)
	return bench.Dataset{}
}

func runSlider(b *testing.B, ds bench.Dataset, frag bench.Fragment, cfg bench.SliderConfig) {
	b.Helper()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := bench.RunSlider(ctx, ds, frag, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(float64(m.Inferred), "inferred")
			b.ReportMetric(m.Throughput, "triples/s")
		}
	}
}

func runBatch(b *testing.B, ds bench.Dataset, frag bench.Fragment, strategy baseline.Strategy) {
	b.Helper()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := bench.RunBatch(ctx, ds, frag, strategy)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(float64(m.Inferred), "inferred")
		}
	}
}

// BenchmarkTable1 regenerates the paper's Table 1: every ontology × both
// fragments × both engines (batch naive = the OWLIM-SE stand-in).
func BenchmarkTable1(b *testing.B) {
	for _, ds := range benchDatasets {
		for _, frag := range []bench.Fragment{bench.RhoDF, bench.RDFS} {
			ds, frag := ds, frag
			b.Run(fmt.Sprintf("%s/%s/batch", ds.Name, frag), func(b *testing.B) {
				runBatch(b, ds, frag, baseline.Naive)
			})
			b.Run(fmt.Sprintf("%s/%s/slider", ds.Name, frag), func(b *testing.B) {
				runSlider(b, ds, frag, bench.SliderConfig{})
			})
		}
	}
}

// BenchmarkFigure3 regenerates Figure 3's series: inference time for both
// engines on both fragments, largest BSBM dataset omitted as in the paper.
func BenchmarkFigure3(b *testing.B) {
	for _, ds := range benchDatasets {
		if ds.Name == "BSBM_5M" {
			continue
		}
		// Figure 3 is Table 1 visualised; benchmark a representative
		// subset (the extremes of each family) to keep the suite short.
		switch ds.Name {
		case "BSBM_100k", "BSBM_1M", "wikipedia", "wordnet", "subClassOf10", "subClassOf100":
		default:
			continue
		}
		for _, frag := range []bench.Fragment{bench.RhoDF, bench.RDFS} {
			ds, frag := ds, frag
			b.Run(fmt.Sprintf("%s/%s/batch", ds.Name, frag), func(b *testing.B) {
				runBatch(b, ds, frag, baseline.Naive)
			})
			b.Run(fmt.Sprintf("%s/%s/slider", ds.Name, frag), func(b *testing.B) {
				runSlider(b, ds, frag, bench.SliderConfig{})
			})
		}
	}
}

// BenchmarkFigure2 measures building the rules dependency graph and
// rendering it as DOT (done once at reasoner initialisation).
func BenchmarkFigure2(b *testing.B) {
	for _, frag := range []bench.Fragment{bench.RhoDF, bench.RDFS} {
		frag := frag
		b.Run(frag.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				g := rules.BuildDependencyGraph(frag.Rules())
				if len(g.DOT()) == 0 {
					b.Fatal("empty DOT")
				}
			}
		})
	}
}

// BenchmarkAblationBufferSize sweeps the demo's buffer-size parameter on
// a fixed workload (the §4 parameter space, one axis).
func BenchmarkAblationBufferSize(b *testing.B) {
	ds := datasetNamed(b, "BSBM_100k")
	for _, size := range []int{1, 10, 100, 1000} {
		size := size
		b.Run(fmt.Sprintf("buffer%d", size), func(b *testing.B) {
			runSlider(b, ds, bench.RhoDF, bench.SliderConfig{BufferSize: size})
		})
	}
}

// BenchmarkAblationTimeout sweeps the buffer-timeout parameter (the other
// §4 axis) on a workload small enough that timeouts actually fire.
func BenchmarkAblationTimeout(b *testing.B) {
	ds := datasetNamed(b, "subClassOf100")
	for _, to := range []time.Duration{time.Millisecond, 10 * time.Millisecond, 100 * time.Millisecond} {
		to := to
		b.Run(to.String(), func(b *testing.B) {
			runSlider(b, ds, bench.RhoDF, bench.SliderConfig{BufferSize: 512, Timeout: to})
		})
	}
}

// BenchmarkAblationStrategy isolates the "duplicates limitation" claim:
// the same chain workload under naive batch, semi-naive batch, and
// incremental Slider evaluation.
func BenchmarkAblationStrategy(b *testing.B) {
	ds := datasetNamed(b, "subClassOf100")
	b.Run("naive", func(b *testing.B) { runBatch(b, ds, bench.RhoDF, baseline.Naive) })
	b.Run("seminaive", func(b *testing.B) { runBatch(b, ds, bench.RhoDF, baseline.SemiNaive) })
	b.Run("slider", func(b *testing.B) { runSlider(b, ds, bench.RhoDF, bench.SliderConfig{}) })
}

// BenchmarkAblationWorkers measures the scalability of the thread pool
// (the paper's "parallel and scalable execution" claim).
func BenchmarkAblationWorkers(b *testing.B) {
	ds := datasetNamed(b, "BSBM_1M")
	for _, w := range []int{1, 2, 4, 8} {
		w := w
		b.Run(fmt.Sprintf("workers%d", w), func(b *testing.B) {
			runSlider(b, ds, bench.RDFS, bench.SliderConfig{Workers: w})
		})
	}
}

// BenchmarkStore covers the triple store's hot operations (vertical
// partitioning trade-offs, §2.2).
func BenchmarkStore(b *testing.B) {
	const n = 100_000
	triples := make([]rdf.Triple, n)
	for i := range triples {
		triples[i] = rdf.T(rdf.ID(i%10000+100), rdf.ID(i%17+1), rdf.ID(i%5000+100))
	}
	b.Run("Add", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			st := store.New()
			for _, t := range triples {
				st.Add(t)
			}
		}
	})
	st := store.New()
	for _, t := range triples {
		st.Add(t)
	}
	b.Run("Contains", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			st.Contains(triples[i%n])
		}
	})
	b.Run("Objects", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			st.Objects(triples[i%n].P, triples[i%n].S)
		}
	})
	b.Run("MatchPredicate", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if got := st.Match(rdf.T(rdf.Any, rdf.ID(i%17+1), rdf.Any)); len(got) == 0 {
				b.Fatal("no matches")
			}
		}
	})
}

// BenchmarkParser measures N-Triples parsing throughput (the input
// manager's front end; paper timings include parsing).
func BenchmarkParser(b *testing.B) {
	var sb strings.Builder
	if err := ntriples.WriteAll(&sb, bsbm.Generate(bsbm.Config{Triples: 10_000, Seed: 1})); err != nil {
		b.Fatal(err)
	}
	doc := sb.String()
	b.SetBytes(int64(len(doc)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sts, err := ntriples.ParseString(doc)
		if err != nil {
			b.Fatal(err)
		}
		if len(sts) < 10_000 {
			b.Fatal("short parse")
		}
	}
}

// BenchmarkDictionary measures dictionary encoding throughput (the input
// manager's URI→ID mapping).
func BenchmarkDictionary(b *testing.B) {
	sts := ontogen.Wikipedia(ontogen.Config{Triples: 10_000, Seed: 1})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d := rdf.NewDictionary()
		for _, s := range sts {
			d.EncodeStatement(s)
		}
	}
}
